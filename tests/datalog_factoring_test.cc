#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/deadline.h"
#include "base/rng.h"
#include "base/strings.h"
#include "gtest/gtest.h"
#include "logic/canonical.h"
#include "rewriting/containment.h"
#include "rewriting/datalog.h"
#include "rewriting/rewriter.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/university.h"

// Property: factoring is lossless. For any saturated union U,
// UnfoldDatalog(FactorUcq(U)) must be CQ-for-CQ equivalent to U — every
// unfolded disjunct hom-equivalent (rewriting/containment.h) to some
// input disjunct and vice versa. Run over seeded random programs with
// the rewriter's eager-subsumption pruning both on and off, so the
// factoring sees both minimized and redundant unions.

namespace ontorew {
namespace {

// True iff every disjunct of `a` is CqEquivalent to some disjunct of `b`.
bool EachDisjunctHasEquivalent(const UnionOfCqs& a, const UnionOfCqs& b,
                               std::string* missing) {
  for (const ConjunctiveQuery& cq : a.disjuncts()) {
    bool found = false;
    for (const ConjunctiveQuery& other : b.disjuncts()) {
      if (CqEquivalent(cq, other)) {
        found = true;
        break;
      }
    }
    if (!found) {
      *missing = CanonicalCqKey(cq);
      return false;
    }
  }
  return true;
}

// Factors `ucq` and checks the unfolding round-trips. Returns false (with
// a gtest failure) on any violation.
void CheckRoundTrip(const UnionOfCqs& ucq, const std::string& label) {
  StatusOr<DatalogProgram> factored = FactorUcq(ucq);
  ASSERT_TRUE(factored.ok()) << label << ": " << factored.status().ToString();
  ASSERT_TRUE(factored->Validate().ok())
      << label << ": " << factored->Validate().ToString();
  StatusOr<UnionOfCqs> unfolded = UnfoldDatalog(*factored);
  ASSERT_TRUE(unfolded.ok()) << label << ": " << unfolded.status().ToString();
  std::string missing;
  EXPECT_TRUE(EachDisjunctHasEquivalent(*unfolded, ucq, &missing))
      << label << ": unfolded disjunct not covered by input: " << missing;
  EXPECT_TRUE(EachDisjunctHasEquivalent(ucq, *unfolded, &missing))
      << label << ": input disjunct lost by factoring: " << missing;
}

// Mirrors the differential harness's generator recipe so the factoring
// sees the same input space the cross-backend check runs on.
UnionOfCqs SaturatedUnion(std::uint64_t seed, bool eager_subsumption,
                          bool* rewrote) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + seed);
  Vocabulary vocab;
  TgdProgram program;
  if (seed % 2 == 0) {
    program = RandomLinearProgram(rng.UniformIn(3, 6), rng.UniformIn(3, 5),
                                  rng.UniformIn(1, 3), 0.4, &rng, &vocab);
  } else {
    RandomProgramOptions options;
    options.num_rules = rng.UniformIn(3, 7);
    options.num_predicates = rng.UniformIn(3, 5);
    options.max_arity = 3;
    options.max_body_atoms = 2;
    options.max_head_atoms = 1;
    options.existential_prob = 0.3;
    options.repeat_prob = 0.2;
    options.constant_prob = 0.15;
    options.num_constants = 3;
    program = RandomProgram(options, &rng, &vocab);
  }
  ConjunctiveQuery query = RandomCq(program, rng.UniformIn(1, 3),
                                    rng.UniformIn(0, 2), &rng, &vocab);
  RewriterOptions options;
  options.max_cqs = 3000;
  options.cancel = CancelScope(Deadline::AfterMillis(2000));
  options.eager_subsumption = eager_subsumption;
  StatusOr<RewriteResult> result = RewriteCq(query, program, options);
  *rewrote = result.ok();
  return result.ok() ? result->ucq : UnionOfCqs(query);
}

TEST(DatalogFactoringTest, UnfoldingRoundTripsOverSeededPrograms) {
  int compared = 0;
  for (std::uint64_t seed = 1; seed <= 110; ++seed) {
    for (bool eager : {false, true}) {
      bool rewrote = false;
      UnionOfCqs ucq = SaturatedUnion(seed, eager, &rewrote);
      if (!rewrote) continue;  // Budget skip, counted below.
      ++compared;
      CheckRoundTrip(ucq, StrCat("seed ", seed, " eager=", eager));
      if (::testing::Test::HasFailure()) return;
    }
  }
  RecordProperty("compared", compared);
  // >= 100 programs must actually exercise the factoring (both
  // subsumption modes count: the unions genuinely differ).
  EXPECT_GE(compared, 100) << "too few seeds saturated within budget";
}

// university_q3 is the motivating workload: 1000 flat disjuncts must
// collapse to a program whose unfolding is the same union. Also pins the
// compression itself so a factoring regression (back to the flat form)
// fails loudly, not just slowly.
TEST(DatalogFactoringTest, UniversityQ3CollapsesAndRoundTrips) {
  Vocabulary vocab;
  TgdProgram ontology = UniversityOntology(&vocab);
  ConjunctiveQuery q3 = MustQuery(
      "q(X0) :- person(X0), knows(X0, X1), person(X1), knows(X1, X2), "
      "person(X2).",
      &vocab);
  RewriterOptions options;
  options.max_cqs = 300000;
  StatusOr<RewriteResult> result = RewriteCq(q3, ontology, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->ucq.size(), 1000);

  StatusOr<DatalogProgram> factored = FactorUcq(result->ucq);
  ASSERT_TRUE(factored.ok()) << factored.status().ToString();
  EXPECT_GE(factored->cte_count(), 1);
  EXPECT_LT(factored->total_rules(), 100)
      << "factoring stopped compressing:\n"
      << DatalogToString(*factored, vocab);
  EXPECT_LT(static_cast<int>(factored->output.size()), 50);

  StatusOr<UnionOfCqs> unfolded = UnfoldDatalog(*factored);
  ASSERT_TRUE(unfolded.ok()) << unfolded.status().ToString();
  // The factoring is exact (not just hom-equivalent) here: unfolding
  // reproduces the identical canonical disjunct set.
  std::unordered_set<std::string> input_keys;
  for (const ConjunctiveQuery& cq : result->ucq.disjuncts()) {
    input_keys.insert(CanonicalCqKey(cq));
  }
  std::unordered_set<std::string> unfolded_keys;
  for (const ConjunctiveQuery& cq : unfolded->disjuncts()) {
    unfolded_keys.insert(CanonicalCqKey(cq));
  }
  EXPECT_EQ(input_keys, unfolded_keys);
}

// Unions with nothing shared must pass through unfactored: the program
// degenerates to one output rule per disjunct and no aux predicates.
TEST(DatalogFactoringTest, UnsharedUnionIsLeftFlat) {
  Vocabulary vocab;
  UnionOfCqs ucq;
  ucq.Add(MustQuery("q(X) :- p(X).", &vocab));
  ucq.Add(MustQuery("q(X) :- r(X, Y).", &vocab));
  StatusOr<DatalogProgram> factored = FactorUcq(ucq);
  ASSERT_TRUE(factored.ok()) << factored.status().ToString();
  EXPECT_EQ(factored->cte_count(), 0);
  EXPECT_EQ(static_cast<int>(factored->output.size()), 2);
}

// A shared single-atom slot across two join positions (the q2 shape in
// miniature): the 4-arm product must collapse to ONE output rule over at
// most two auxes (which factorization the greedy picks first is not
// pinned — both fully compress).
TEST(DatalogFactoringTest, SharedSlotReusesOneAux) {
  Vocabulary vocab;
  UnionOfCqs ucq;
  for (const char* a : {"p", "r"}) {
    for (const char* b : {"p", "r"}) {
      ucq.Add(MustQuery(
          StrCat("q(X) :- ", a, "(X), knows(X, Y), ", b, "(Y).", ""), &vocab));
    }
  }
  StatusOr<DatalogProgram> factored = FactorUcq(ucq);
  ASSERT_TRUE(factored.ok()) << factored.status().ToString();
  EXPECT_GE(factored->cte_count(), 1) << DatalogToString(*factored, vocab);
  EXPECT_LE(factored->cte_count(), 2) << DatalogToString(*factored, vocab);
  EXPECT_EQ(static_cast<int>(factored->output.size()), 1)
      << DatalogToString(*factored, vocab);
  StatusOr<UnionOfCqs> unfolded = UnfoldDatalog(*factored);
  ASSERT_TRUE(unfolded.ok());
  EXPECT_EQ(unfolded->size(), 4);
}

// Boolean (0-ary) queries and constants survive the round-trip.
TEST(DatalogFactoringTest, BooleanAndConstantUnionsRoundTrip) {
  Vocabulary vocab;
  UnionOfCqs boolean;
  boolean.Add(MustQuery("q() :- p(X), edge(X, Y).", &vocab));
  boolean.Add(MustQuery("q() :- r(X), edge(X, Y).", &vocab));
  CheckRoundTrip(boolean, "boolean");

  // A 0-ary shared slot: the merged aux itself is propositional.
  UnionOfCqs propositional;
  propositional.Add(MustQuery("q() :- p(X), m1().", &vocab));
  propositional.Add(MustQuery("q() :- p(X), m2().", &vocab));
  StatusOr<DatalogProgram> factored = FactorUcq(propositional);
  ASSERT_TRUE(factored.ok()) << factored.status().ToString();
  EXPECT_EQ(factored->cte_count(), 1);
  EXPECT_EQ(factored->aux[0].arity, 0);
  CheckRoundTrip(propositional, "propositional");

  UnionOfCqs constants;
  constants.Add(MustQuery("q(X) :- p(X), edge(X, a).", &vocab));
  constants.Add(MustQuery("q(X) :- r(X), edge(X, a).", &vocab));
  CheckRoundTrip(constants, "constants");
}

}  // namespace
}  // namespace ontorew

#include <thread>
#include <vector>

#include "base/metrics.h"
#include "gtest/gtest.h"

namespace ontorew {
namespace {

TEST(MetricsTest, CountersAccumulate) {
  MetricsRegistry metrics;
  metrics.Increment("requests");
  metrics.Increment("requests");
  metrics.Increment("tuples", 40);
  MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.Counter("requests"), 2);
  EXPECT_EQ(snapshot.Counter("tuples"), 40);
  EXPECT_EQ(snapshot.Counter("absent"), 0);
}

TEST(MetricsTest, TimersAccumulate) {
  MetricsRegistry metrics;
  metrics.AddTimeNs("stage", 1500);
  metrics.AddTimeNs("stage", 500);
  EXPECT_EQ(metrics.Snapshot().TimerNs("stage"), 2000);
  EXPECT_EQ(metrics.Snapshot().TimerNs("absent"), 0);
}

TEST(MetricsTest, ScopedTimerRecordsElapsedTime) {
  MetricsRegistry metrics;
  {
    ScopedTimer timer(&metrics, "work_ns");
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_GT(metrics.Snapshot().TimerNs("work_ns"), 0);
  // A null registry is a no-op, not a crash.
  ScopedTimer disabled(nullptr, "ignored");
}

TEST(MetricsTest, SnapshotIsAPointInTimeCopy) {
  MetricsRegistry metrics;
  metrics.Increment("n");
  MetricsSnapshot snapshot = metrics.Snapshot();
  metrics.Increment("n");
  EXPECT_EQ(snapshot.Counter("n"), 1);
  EXPECT_EQ(metrics.Snapshot().Counter("n"), 2);
}

TEST(MetricsTest, ResetClearsEverything) {
  MetricsRegistry metrics;
  metrics.Increment("n", 7);
  metrics.AddTimeNs("t", 9);
  metrics.Reset();
  MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.timers_ns.empty());
}

TEST(MetricsTest, ToStringIsDeterministicAndReadable) {
  MetricsRegistry metrics;
  metrics.Increment("b_counter", 2);
  metrics.Increment("a_counter", 1);
  metrics.AddTimeNs("z_timer", 2500000);  // 2.5 ms.
  std::string text = metrics.Snapshot().ToString();
  EXPECT_EQ(text,
            "a_counter = 1\n"
            "b_counter = 2\n"
            "z_timer = 2.5 ms\n");
}

TEST(MetricsTest, ConcurrentIncrementsAreNotLost) {
  MetricsRegistry metrics;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&metrics] {
      for (int i = 0; i < kPerThread; ++i) metrics.Increment("shared");
    });
  }
  for (std::thread& thread : pool) thread.join();
  EXPECT_EQ(metrics.Snapshot().Counter("shared"), kThreads * kPerThread);
}

}  // namespace
}  // namespace ontorew

#include "gtest/gtest.h"
#include "logic/substitution.h"
#include "logic/vocabulary.h"
#include "test_util.h"

namespace ontorew {
namespace {

TEST(SubstitutionTest, EmptyResolvesIdentity) {
  Substitution subst;
  EXPECT_TRUE(subst.empty());
  EXPECT_EQ(subst.Resolve(Term::Var(1)), Term::Var(1));
  EXPECT_EQ(subst.Resolve(Term::Const(2)), Term::Const(2));
}

TEST(SubstitutionTest, ResolveFollowsChains) {
  Substitution subst;
  subst.Bind(1, Term::Var(2));
  subst.Bind(2, Term::Var(3));
  subst.Bind(3, Term::Const(9));
  EXPECT_EQ(subst.Resolve(Term::Var(1)), Term::Const(9));
  EXPECT_EQ(subst.Resolve(Term::Var(2)), Term::Const(9));
  EXPECT_TRUE(subst.IsBound(1));
  EXPECT_FALSE(subst.IsBound(9));
}

TEST(SubstitutionTest, ApplyAtomResolvesAllPositions) {
  Vocabulary vocab;
  Atom atom = MustAtom("r(X, Y, X)", &vocab);
  VariableId x = atom.term(0).id();
  Substitution subst;
  subst.Bind(x, Term::Const(vocab.InternConstant("a")));
  Atom applied = subst.Apply(atom);
  EXPECT_TRUE(applied.term(0).is_constant());
  EXPECT_TRUE(applied.term(2).is_constant());
  EXPECT_TRUE(applied.term(1).is_variable());
}

TEST(SubstitutionTest, ApplyVectorPreservesLength) {
  Vocabulary vocab;
  std::vector<Atom> atoms = {MustAtom("r(X, Y)", &vocab),
                             MustAtom("s(Y)", &vocab)};
  Substitution subst;
  subst.Bind(atoms[0].term(1).id(), Term::Const(0));
  std::vector<Atom> applied = subst.Apply(atoms);
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_TRUE(applied[1].term(0).is_constant());
}

TEST(SubstitutionTest, DomainListsBoundVariables) {
  Substitution subst;
  subst.Bind(4, Term::Const(0));
  subst.Bind(7, Term::Var(4));
  std::vector<VariableId> domain = subst.Domain();
  EXPECT_EQ(domain.size(), 2u);
}

TEST(SubstitutionDeathTest, DoubleBindAborts) {
  Substitution subst;
  subst.Bind(1, Term::Const(0));
  EXPECT_DEATH(subst.Bind(1, Term::Const(1)), "bound twice");
}

TEST(SubstitutionDeathTest, SelfBindAborts) {
  Substitution subst;
  EXPECT_DEATH(subst.Bind(1, Term::Var(1)), "itself");
}

}  // namespace
}  // namespace ontorew

#include "classes/guarded.h"
#include "classes/linear.h"
#include "core/swr.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/paper_examples.h"
#include "workload/university.h"

namespace ontorew {
namespace {

TEST(GuardedTest, GuardAtomCoversAllBodyVariables) {
  Vocabulary vocab;
  // g(X, Y, Z) guards both other atoms.
  EXPECT_TRUE(
      IsGuarded(MustTgd("g(X, Y, Z), r(X, Y), s(Z) -> t(X).", &vocab)));
  // No atom contains X, Y and Z together.
  EXPECT_FALSE(
      IsGuarded(MustTgd("r(X, Y), r2(Y, Z) -> t2(X, Z).", &vocab)));
}

TEST(GuardedTest, LinearImpliesGuarded) {
  Vocabulary vocab;
  Tgd linear = MustTgd("r(X, Y) -> s(X, Z).", &vocab);
  EXPECT_TRUE(IsLinear(linear));
  EXPECT_TRUE(IsGuarded(linear));
  Vocabulary vocab2;
  EXPECT_TRUE(IsGuarded(UniversityOntology(&vocab2)));
}

TEST(GuardedTest, FrontierGuardedRelaxesGuarded) {
  Vocabulary vocab;
  // Not guarded (no atom has X, Y, Z) but r(X, Z) covers the frontier
  // {X, Z}.
  Tgd tgd = MustTgd("r(X, Z), s(X, Y) -> t(X, Z).", &vocab);
  EXPECT_FALSE(IsGuarded(tgd));
  EXPECT_TRUE(IsFrontierGuarded(tgd));
}

TEST(GuardedTest, GuardedImpliesFrontierGuarded) {
  Vocabulary vocab;
  Tgd tgd = MustTgd("g(X, Y), r(X) -> s(X, Y).", &vocab);
  EXPECT_TRUE(IsGuarded(tgd));
  EXPECT_TRUE(IsFrontierGuarded(tgd));
}

TEST(GuardedTest, GuardedDoesNotImplyFoRewritable) {
  // Transitivity is frontier-guarded... its frontier {X, Z} is covered by
  // no single atom, so actually NOT frontier-guarded; use the canonical
  // guarded-but-recursive example instead: e(X, Y), g(X, Y) -> g2... Keep
  // it concrete: the parent/person pattern is guarded (linear) yet its
  // chase diverges, and SWR accepts it (FO-rewritable); whereas
  //   g(X, Y, Z), e(X, Y), e(Y, Z) -> e(X, Z)
  // is guarded but not SWR (the transitive core survives).
  Vocabulary vocab;
  Tgd guarded_transitivity =
      MustTgd("g(X, Y, Z), e(X, Y), e(Y, Z) -> e(X, Z).", &vocab);
  EXPECT_TRUE(IsGuarded(guarded_transitivity));
  TgdProgram program({guarded_transitivity});
  EXPECT_FALSE(IsSwr(program));
}

TEST(GuardedTest, PaperExamplesClassification) {
  Vocabulary vocab1;
  // Example 1: R1's body {s(Y1,Y2,Y3), t(Y4)} has no guard.
  EXPECT_FALSE(IsGuarded(PaperExample1(&vocab1)));
  // But every rule's frontier is covered by one atom.
  EXPECT_TRUE(IsFrontierGuarded(PaperExample1(&vocab1)));
  Vocabulary vocab3;
  // Example 3: R3's body {u(Y1), t(Y1,Y1,Y2)}: t(Y1,Y1,Y2) contains every
  // body variable, so the rule (and the whole set) is even guarded.
  EXPECT_TRUE(IsFrontierGuarded(PaperExample3(&vocab3)));
  EXPECT_TRUE(IsGuarded(PaperExample3(&vocab3)));
}

}  // namespace
}  // namespace ontorew

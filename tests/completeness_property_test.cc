// Completeness direction of the rewriting, probed on the widened random
// program family — the shapes where the seed-7275 bug lived: constant
// heads, heads repeating one existential at every position, higher
// arities, constants and repeats inside body atoms. Any answer a
// (truncated) chase derives is a certain answer, so the rewriting must
// produce it too; a missing tuple is exactly the class of bug the
// differential harness caught at seed 7275.
//
// The soundness-direction counterpart (and the exact-agreement check on
// weakly acyclic programs) lives in soundness_property_test.cc; the
// minimized real-world failures live in tests/corpus/.

#include <set>
#include <vector>

#include "base/rng.h"
#include "chase/chase.h"
#include "db/eval.h"
#include "gtest/gtest.h"
#include "logic/printer.h"
#include "rewriting/rewriter.h"
#include "test_util.h"
#include "workload/generators.h"

namespace ontorew {
namespace {

std::set<Tuple> AsSet(const std::vector<Tuple>& tuples) {
  return std::set<Tuple>(tuples.begin(), tuples.end());
}

class WidenedCompletenessTest : public ::testing::TestWithParam<int> {};

TEST_P(WidenedCompletenessTest, RewritingCoversChaseOnWidenedFamily) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u);
  int checked = 0;
  for (int attempt = 0; attempt < 80 && checked < 8; ++attempt) {
    Vocabulary vocab;
    RandomProgramOptions options;
    options.num_rules = rng.UniformIn(2, 5);
    options.num_predicates = rng.UniformIn(3, 5);
    options.max_arity = 4;
    options.max_body_atoms = 2;
    options.existential_prob = 0.35;
    options.repeat_prob = 0.2;
    options.constant_prob = 0.1;
    // The shapes the old applicability test mishandled, drawn often.
    options.repeated_existential_head_prob = 0.25;
    options.constant_head_prob = 0.2;
    TgdProgram program = RandomProgram(options, &rng, &vocab);
    if (!program.IsSingleHead()) continue;

    ConjunctiveQuery query =
        RandomCq(program, rng.UniformIn(1, 2), 1, &rng, &vocab);
    RewriterOptions rewriter_options;
    rewriter_options.max_cqs = 20000;
    StatusOr<RewriteResult> rewriting =
        RewriteCq(query, program, rewriter_options);
    // The widened family is not confined to any terminating class; a
    // diverging saturation is not a completeness failure.
    if (!rewriting.ok()) continue;

    Database db = RandomDatabase(program, 5, 3, &rng, &vocab);
    ChaseOptions chase_options;
    chase_options.max_rounds = 4;  // Deliberately truncated.
    chase_options.max_tuples = 20000;
    ChaseResult chase = RunChase(program, db, chase_options);

    EvalOptions eval_options;
    eval_options.drop_tuples_with_nulls = true;
    std::set<Tuple> via_rewriting =
        AsSet(Evaluate(rewriting->ucq, db, eval_options));
    std::set<Tuple> via_chase =
        AsSet(Evaluate(UnionOfCqs(query), chase.db, eval_options));
    for (const Tuple& tuple : via_chase) {
      EXPECT_TRUE(via_rewriting.count(tuple) > 0)
          << "chase-derived certain answer missing from the rewriting"
          << "\nprogram:\n" << ToString(program, vocab)
          << "\nquery: " << ToString(query, vocab);
    }
    if (chase.terminated) {
      // Fixpoint reached: the two must agree exactly.
      EXPECT_EQ(via_rewriting, via_chase)
          << "program:\n" << ToString(program, vocab)
          << "\nquery: " << ToString(query, vocab);
    }
    ++checked;
  }
  EXPECT_GT(checked, 0) << "generator produced no usable triples";
}

INSTANTIATE_TEST_SUITE_P(Seeds, WidenedCompletenessTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12));

}  // namespace
}  // namespace ontorew

#include "gtest/gtest.h"
#include "logic/query.h"
#include "test_util.h"

namespace ontorew {
namespace {

TEST(QueryTest, ParseAndAccessors) {
  Vocabulary vocab;
  ConjunctiveQuery cq = MustQuery("q(X, Y) :- r(X, Z), s(Z, Y).", &vocab);
  EXPECT_EQ(cq.arity(), 2);
  EXPECT_EQ(cq.body().size(), 2u);
  EXPECT_TRUE(cq.Validate().ok());
}

TEST(QueryTest, AnswerVariableMustOccurInBody) {
  Vocabulary vocab;
  StatusOr<ConjunctiveQuery> bad = ParseQuery("q(X) :- r(Y).", &vocab);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, ExistentialVariables) {
  Vocabulary vocab;
  ConjunctiveQuery cq = MustQuery("q(X) :- r(X, Y), s(Y, Z).", &vocab);
  std::vector<VariableId> existential = cq.ExistentialVariables();
  EXPECT_EQ(existential.size(), 2u);
  EXPECT_TRUE(cq.IsAnswerVariable(vocab.InternVariable("X")));
  EXPECT_FALSE(cq.IsAnswerVariable(vocab.InternVariable("Y")));
}

TEST(QueryTest, UnboundMeansExistentialAndSingleOccurrence) {
  Vocabulary vocab;
  ConjunctiveQuery cq = MustQuery("q(X) :- r(X, Y), s(Y, Z).", &vocab);
  VariableId y = vocab.InternVariable("Y");
  VariableId z = vocab.InternVariable("Z");
  VariableId x = vocab.InternVariable("X");
  EXPECT_FALSE(cq.IsUnbound(y));  // Occurs twice (join variable).
  EXPECT_TRUE(cq.IsUnbound(z));   // Occurs once, existential.
  EXPECT_FALSE(cq.IsUnbound(x));  // Answer variable.
}

TEST(QueryTest, CountVariableOccurrencesAcrossAtoms) {
  Vocabulary vocab;
  ConjunctiveQuery cq = MustQuery("q(X) :- r(X, X), s(X).", &vocab);
  EXPECT_EQ(cq.CountVariableOccurrences(vocab.InternVariable("X")), 3);
}

TEST(QueryTest, ConstantAnswerTerm) {
  Vocabulary vocab;
  ConstantId c = vocab.InternConstant("alice");
  ConjunctiveQuery cq(
      std::vector<Term>{Term::Const(c), Term::Var(vocab.InternVariable("X"))},
      {MustAtom("r(X)", &vocab)});
  EXPECT_TRUE(cq.Validate().ok());
  EXPECT_EQ(cq.AnswerVariables().size(), 1u);
}

TEST(QueryTest, BooleanQuery) {
  Vocabulary vocab;
  ConjunctiveQuery cq = MustQuery("q() :- r(X, Y).", &vocab);
  EXPECT_EQ(cq.arity(), 0);
  EXPECT_TRUE(cq.Validate().ok());
}

TEST(UcqTest, MixedAritiesRejected) {
  Vocabulary vocab;
  UnionOfCqs ucq;
  ucq.Add(MustQuery("q(X) :- r(X, Y).", &vocab));
  ucq.Add(MustQuery("q(X, Y) :- r(X, Y).", &vocab));
  EXPECT_FALSE(ucq.Validate().ok());
}

TEST(UcqTest, EmptyRejected) {
  UnionOfCqs ucq;
  EXPECT_FALSE(ucq.Validate().ok());
}

TEST(UcqTest, SingleDisjunctConvenience) {
  Vocabulary vocab;
  UnionOfCqs ucq(MustQuery("q(X) :- r(X).", &vocab));
  EXPECT_EQ(ucq.size(), 1);
  EXPECT_EQ(ucq.arity(), 1);
  EXPECT_TRUE(ucq.Validate().ok());
}

}  // namespace
}  // namespace ontorew

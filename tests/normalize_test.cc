#include <set>
#include <vector>

#include "chase/chase.h"
#include "core/wr.h"
#include "gtest/gtest.h"
#include "base/rng.h"
#include "classes/weakly_acyclic.h"
#include "logic/normalize.h"
#include "logic/printer.h"
#include "workload/generators.h"
#include "rewriting/rewriter.h"
#include "db/eval.h"
#include "test_util.h"

namespace ontorew {
namespace {

TEST(NormalizeTest, SingleHeadRulesPassThrough) {
  Vocabulary vocab;
  TgdProgram program = MustProgram("r(X) -> s(X).\ns(X) -> t(X, Y).\n",
                                   &vocab);
  TgdProgram normalized = NormalizeToSingleHead(program, &vocab);
  EXPECT_EQ(normalized.size(), 2);
  EXPECT_EQ(normalized.tgds(), program.tgds());
}

TEST(NormalizeTest, MultiHeadSplitsThroughAuxiliary) {
  Vocabulary vocab;
  TgdProgram program = MustProgram("p(X) -> r(X, Y), s(Y).", &vocab);
  TgdProgram normalized = NormalizeToSingleHead(program, &vocab);
  ASSERT_EQ(normalized.size(), 3);  // body->aux, aux->r, aux->s.
  EXPECT_TRUE(normalized.IsSingleHead());
  // The auxiliary predicate carries frontier + existential variables.
  EXPECT_GE(vocab.FindPredicate("_aux0"), 0);
  EXPECT_EQ(vocab.PredicateArity(vocab.FindPredicate("_aux0")), 2);  // X, Y.
}

TEST(NormalizeTest, SharedExistentialStaysJoined) {
  // The translation must keep the shared null of r(X,Y), s(Y) joined:
  // chase the normalized program and check the join exists.
  Vocabulary vocab;
  TgdProgram program = MustProgram("p(X) -> r(X, Y), s(Y).", &vocab);
  TgdProgram normalized = NormalizeToSingleHead(program, &vocab);
  Database db;
  db.Insert(vocab.FindPredicate("p"),
            {Value::Constant(vocab.InternConstant("k"))});
  ChaseResult result = RunChase(normalized, db);
  ASSERT_TRUE(result.terminated);
  ConjunctiveQuery join = MustQuery("q(X) :- r(X, Y), s(Y).", &vocab);
  // The certain (null-tolerant) match must exist.
  EXPECT_EQ(Evaluate(join, result.db).size(), 1u);
}

TEST(NormalizeTest, CertainAnswersPreservedOverOriginalSignature) {
  Vocabulary vocab;
  TgdProgram program = MustProgram(
      "p(X) -> r(X, Y), s(Y).\n"
      "s(Y) -> t(Y).\n",
      &vocab);
  TgdProgram normalized = NormalizeToSingleHead(program, &vocab);
  Database db;
  db.Insert(vocab.FindPredicate("p"),
            {Value::Constant(vocab.InternConstant("k"))});
  db.Insert(vocab.FindPredicate("s"),
            {Value::Constant(vocab.InternConstant("m"))});
  for (const char* probe :
       {"q(X) :- r(X, W).", "q(X) :- t(X).", "q() :- r(X, Y), s(Y)."}) {
    ConjunctiveQuery query = MustQuery(probe, &vocab);
    StatusOr<std::vector<Tuple>> original =
        CertainAnswersViaChase(UnionOfCqs(query), program, db);
    StatusOr<std::vector<Tuple>> rewritten =
        CertainAnswersViaChase(UnionOfCqs(query), normalized, db);
    ASSERT_TRUE(original.ok() && rewritten.ok()) << probe;
    EXPECT_EQ(*original, *rewritten) << probe;
  }
}

TEST(NormalizeTest, EnablesWrAndRewritingForMultiHead) {
  Vocabulary vocab;
  TgdProgram program = MustProgram("p(X) -> r(X, Y), s(Y).", &vocab);
  // Direct WR / rewriting: rejected.
  EXPECT_FALSE(CheckWr(program, vocab).ok());
  // After normalization both work.
  TgdProgram normalized = NormalizeToSingleHead(program, &vocab);
  StatusOr<WrReport> wr = CheckWr(normalized, vocab);
  ASSERT_TRUE(wr.ok()) << wr.status();
  EXPECT_TRUE(wr->is_wr);
  StatusOr<RewriteResult> rewriting =
      RewriteCq(MustQuery("q(X) :- r(X, W).", &vocab), normalized);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status();
  // The rewriting reaches back to p through the auxiliary.
  Database db;
  db.Insert(vocab.FindPredicate("p"),
            {Value::Constant(vocab.InternConstant("k"))});
  EXPECT_EQ(Evaluate(rewriting->ucq, db).size(), 1u);
}

// Property: on random multi-head weakly-acyclic programs, the full
// pipeline "normalize -> rewrite -> evaluate over D" agrees with the
// direct multi-head chase. Disjuncts still mentioning auxiliaries
// evaluate to nothing over D (the sources have no aux extension), so the
// original-signature disjuncts must carry the complete answer.
class MultiHeadPipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiHeadPipelineTest, NormalizedRewritingMatchesDirectChase) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 512927377);
  int checked = 0;
  for (int attempt = 0; attempt < 60 && checked < 6; ++attempt) {
    Vocabulary vocab;
    RandomProgramOptions options;
    options.num_rules = rng.UniformIn(2, 4);
    options.num_predicates = rng.UniformIn(3, 5);
    options.max_arity = 2;
    options.max_body_atoms = 2;
    options.max_head_atoms = 2;  // Multi-head on purpose.
    options.existential_prob = 0.4;
    TgdProgram program = RandomProgram(options, &rng, &vocab);
    if (program.IsSingleHead()) continue;       // Want real multi-heads.
    if (!IsWeaklyAcyclic(program)) continue;    // Chase must terminate.

    TgdProgram normalized = NormalizeToSingleHead(program, &vocab);
    Database db = RandomDatabase(program, 5, 3, &rng, &vocab);
    ConjunctiveQuery query =
        RandomCq(program, rng.UniformIn(1, 2), 1, &rng, &vocab);

    RewriterOptions rewriter_options;
    rewriter_options.max_cqs = 5000;
    StatusOr<RewriteResult> rewriting =
        RewriteCq(query, normalized, rewriter_options);
    if (!rewriting.ok()) continue;  // Not FO-rewritable for this query.

    StatusOr<std::vector<Tuple>> cert =
        CertainAnswersViaChase(UnionOfCqs(query), program, db);
    ASSERT_TRUE(cert.ok()) << cert.status();

    EvalOptions drop;
    drop.drop_tuples_with_nulls = true;
    EXPECT_EQ(Evaluate(rewriting->ucq, db, drop), *cert)
        << ToString(program, vocab) << "\nquery: "
        << ToString(query, vocab);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiHeadPipelineTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(NormalizeTest, FreshAuxiliaryNamesAcrossCalls) {
  Vocabulary vocab;
  TgdProgram program = MustProgram("p(X) -> r(X, Y), s(Y).", &vocab);
  TgdProgram first = NormalizeToSingleHead(program, &vocab);
  TgdProgram second = NormalizeToSingleHead(program, &vocab);
  // The second normalization must not reuse _aux0 (arity clash risk).
  std::vector<PredicateId> first_pred_list = first.Predicates();
  std::set<PredicateId> first_preds(first_pred_list.begin(),
                                    first_pred_list.end());
  for (PredicateId p : second.Predicates()) {
    if (vocab.PredicateName(p).rfind("_aux", 0) == 0) {
      EXPECT_EQ(first_preds.count(p), 0u);
    }
  }
}

}  // namespace
}  // namespace ontorew

#include <string>

#include "core/swr.h"
#include "core/wr.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/paper_examples.h"
#include "workload/university.h"

namespace ontorew {
namespace {

TEST(WrTest, Example1IsWr) {
  Vocabulary vocab;
  TgdProgram program = PaperExample1(&vocab);
  StatusOr<WrReport> report = CheckWr(program, vocab);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->is_wr);
  EXPECT_GT(report->num_nodes, 0);
}

TEST(WrTest, Example2IsNotWr) {
  Vocabulary vocab;
  TgdProgram program = PaperExample2(&vocab);
  StatusOr<WrReport> report = CheckWr(program, vocab);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->is_wr);
  // The witness walks through the z-marked P-atom of Figure 3.
  EXPECT_NE(report->witness.find("s(z,z,x1)"), std::string::npos)
      << report->witness;
}

TEST(WrTest, Example3IsWr) {
  Vocabulary vocab;
  TgdProgram program = PaperExample3(&vocab);
  StatusOr<WrReport> report = CheckWr(program, vocab);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->is_wr);
  EXPECT_FALSE(IsSwr(program));  // WR strictly extends SWR here.
}

TEST(WrTest, MultiHeadUndetermined) {
  Vocabulary vocab;
  TgdProgram program = MustProgram("r(X) -> s(X), t(X).", &vocab);
  StatusOr<WrReport> report = CheckWr(program, vocab);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(IsWr(program));
}

TEST(WrTest, NodeCapPropagates) {
  Vocabulary vocab;
  TgdProgram program = PaperExample2(&vocab);
  StatusOr<WrReport> report = CheckWr(program, vocab, /*max_nodes=*/2);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
}

// Section 6 conjecture (iii), tested on the cases we can decide: every SWR
// program in our deterministic families is WR.
TEST(WrTest, WrSubsumesSwrOnFamilies) {
  {
    Vocabulary vocab;
    TgdProgram program = ChainFamily(8, 2, &vocab);
    EXPECT_TRUE(IsSwr(program));
    EXPECT_TRUE(IsWr(program));
  }
  {
    Vocabulary vocab;
    TgdProgram program = LadderFamily(5, &vocab);
    EXPECT_TRUE(IsSwr(program));
    EXPECT_TRUE(IsWr(program));
  }
  {
    Vocabulary vocab;
    TgdProgram program = CompositionFamily(4, &vocab);
    EXPECT_TRUE(IsSwr(program));
    EXPECT_TRUE(IsWr(program));
  }
  {
    Vocabulary vocab;
    TgdProgram program = PaperExample1(&vocab);
    EXPECT_TRUE(IsSwr(program));
    EXPECT_TRUE(IsWr(program));
  }
}

TEST(WrTest, FamiliesOfExamples) {
  {
    Vocabulary vocab;
    EXPECT_FALSE(IsWr(Example2Family(2, &vocab)));
  }
  {
    Vocabulary vocab;
    EXPECT_TRUE(IsWr(Example3Family(2, &vocab)));
  }
}

TEST(WrTest, UniversityOntologyIsWr) {
  Vocabulary vocab;
  EXPECT_TRUE(IsWr(UniversityOntology(&vocab)));
}

TEST(WrTest, DangerousSelfJoinRejected) {
  Vocabulary vocab;
  // The SWR-dangerous pattern from swr_test is also WR-dangerous.
  TgdProgram program = MustProgram("p(X, Y), p(Y, Z) -> p(X, W).", &vocab);
  StatusOr<WrReport> report = CheckWr(program, vocab);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->is_wr);
}

TEST(WrTest, TransitivityIsNotWr) {
  // Transitive closure is not FO-expressible; WR rejects it too.
  Vocabulary vocab;
  TgdProgram program = MustProgram("e(X, Y), e(Y, Z) -> e(X, Z).", &vocab);
  EXPECT_FALSE(IsWr(program));
}

}  // namespace
}  // namespace ontorew

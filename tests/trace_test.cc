// Unit tests for the request-scoped tracing layer (base/trace): span
// nesting, attributes, status annotation, the span cap, the indented
// tree renderer, and the Chrome trace_event JSON export.

#include "base/trace.h"

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/status.h"

namespace ontorew {
namespace {

bool HasAttr(const SpanRecord& span, std::string_view key,
             std::string_view value) {
  for (const auto& [k, v] : span.attributes) {
    if (k == key && v == value) return true;
  }
  return false;
}

TEST(TraceTest, SpanNestingRecordsParentIds) {
  Trace trace;
  const Trace::SpanId root = trace.BeginSpan("serve");
  const Trace::SpanId child = trace.BeginSpan("rewrite", root);
  const Trace::SpanId grandchild = trace.BeginSpan("saturate", child);
  const Trace::SpanId sibling = trace.BeginSpan("eval", root);
  trace.EndSpan(grandchild);
  trace.EndSpan(child);
  trace.EndSpan(sibling);
  trace.EndSpan(root);

  const std::vector<SpanRecord> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].parent, Trace::kNoParent);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[2].parent, child);
  EXPECT_EQ(spans[3].parent, root);
  for (const SpanRecord& span : spans) {
    EXPECT_GE(span.duration_ns, 0) << span.name << " left open";
  }
}

TEST(TraceTest, AttributesKeepDuplicatesInRecordingOrder) {
  Trace trace;
  const Trace::SpanId id = trace.BeginSpan("scan");
  trace.AddAttribute(id, "plan", "SCAN person");
  trace.AddAttribute(id, "plan", "SEARCH advisor USING INDEX");
  trace.AddAttribute(id, "rows", std::int64_t{42});
  trace.EndSpan(id);

  const std::vector<SpanRecord> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  const auto& attrs = spans[0].attributes;
  ASSERT_EQ(attrs.size(), 3u);
  EXPECT_EQ(attrs[0], (std::pair<std::string, std::string>("plan",
                                                           "SCAN person")));
  EXPECT_EQ(attrs[1].second, "SEARCH advisor USING INDEX");
  EXPECT_EQ(attrs[2], (std::pair<std::string, std::string>("rows", "42")));
}

TEST(TraceTest, AnnotateStatusRecordsCodeAndMessageOnlyOnError) {
  Trace trace;
  const Trace::SpanId ok_span = trace.BeginSpan("fine");
  trace.AnnotateStatus(ok_span, Status::Ok());
  const Trace::SpanId bad_span = trace.BeginSpan("broken");
  trace.AnnotateStatus(bad_span, DeadlineExceededError("budget spent"));
  trace.EndSpan(bad_span);
  trace.EndSpan(ok_span);

  const std::vector<SpanRecord> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_TRUE(spans[0].attributes.empty());
  EXPECT_TRUE(HasAttr(spans[1], "status", "DeadlineExceeded"));
  EXPECT_TRUE(HasAttr(spans[1], "error", "budget spent"));
}

TEST(TraceTest, EndSpanIsIdempotent) {
  Trace trace;
  const Trace::SpanId id = trace.BeginSpan("once");
  trace.EndSpan(id);
  const std::int64_t duration = trace.Snapshot()[0].duration_ns;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  trace.EndSpan(id);  // Must not stretch the recorded duration.
  EXPECT_EQ(trace.Snapshot()[0].duration_ns, duration);
}

TEST(TraceTest, SpanCapDropsExcessSpansAndTheirChildren) {
  Trace trace(/*max_spans=*/2);
  const Trace::SpanId a = trace.BeginSpan("a");
  const Trace::SpanId b = trace.BeginSpan("b", a);
  const Trace::SpanId c = trace.BeginSpan("c", a);  // Over the cap.
  EXPECT_EQ(c, Trace::kDropped);
  // Children of a dropped span are dropped too.
  const Trace::SpanId d = trace.BeginSpan("d", c);
  EXPECT_EQ(d, Trace::kDropped);
  // Operations on dropped spans are no-ops, not crashes.
  trace.AddAttribute(c, "k", "v");
  trace.EndSpan(c);
  trace.EndSpan(d);
  trace.EndSpan(b);
  trace.EndSpan(a);

  EXPECT_EQ(trace.size(), 2u);
  EXPECT_GE(trace.dropped(), 1u);
  EXPECT_NE(trace.ToString().find("spans dropped"), std::string::npos);
}

TEST(TraceTest, ForeignParentIdBecomesRoot) {
  Trace trace;
  // A parent id this trace never issued (e.g. leaked from another trace)
  // must not corrupt the tree.
  const Trace::SpanId id = trace.BeginSpan("orphan", /*parent=*/99);
  trace.EndSpan(id);
  const std::vector<SpanRecord> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].parent, Trace::kNoParent);
}

TEST(TraceTest, ToStringIndentsChildrenUnderParents) {
  Trace trace;
  const Trace::SpanId root = trace.BeginSpan("serve");
  trace.AddAttribute(root, "cache", "miss");
  const Trace::SpanId child = trace.BeginSpan("rewrite", root);
  trace.AddAttribute(child, "cqs_generated", std::int64_t{7});
  trace.EndSpan(child);
  trace.EndSpan(root);

  const std::string tree = trace.ToString();
  const std::size_t serve_pos = tree.find("serve");
  const std::size_t rewrite_pos = tree.find("\n  rewrite");
  ASSERT_NE(serve_pos, std::string::npos);
  ASSERT_NE(rewrite_pos, std::string::npos) << tree;
  EXPECT_LT(serve_pos, rewrite_pos);
  EXPECT_NE(tree.find("cache=miss"), std::string::npos);
  EXPECT_NE(tree.find("cqs_generated=7"), std::string::npos);
  EXPECT_EQ(tree.find("(open)"), std::string::npos);
}

TEST(TraceTest, OpenSpansAreMarkedInToString) {
  Trace trace;
  trace.BeginSpan("never-ended");
  EXPECT_NE(trace.ToString().find("(open)"), std::string::npos);
}

TEST(TraceTest, ToJsonEmitsTraceEventsWithEscapedAttributes) {
  Trace trace;
  const Trace::SpanId id = trace.BeginSpan("eval");
  trace.AddAttribute(id, "sql", "SELECT \"x\" FROM t\nWHERE a = '\\'");
  trace.AddAttribute(id, "ctrl", std::string_view("\x01", 1));
  trace.EndSpan(id);

  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"schema\": \"ontorew-trace/1\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // Quotes, backslashes, newlines and control bytes must be escaped.
  EXPECT_NE(json.find("SELECT \\\"x\\\" FROM t\\nWHERE a = '\\\\'"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\"droppedSpans\": 0"), std::string::npos);
  // No raw control characters survive into the output.
  for (char c : json) {
    EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\n');
  }
}

TEST(TraceTest, ToJsonMarksOpenSpans) {
  Trace trace;
  trace.BeginSpan("open-one");
  EXPECT_NE(trace.ToJson().find("\"open\": \"true\""), std::string::npos);
}

TEST(TraceSpanTest, RaiiSpanEndsOnScopeExit) {
  Trace trace;
  {
    TraceSpan span(&trace, "scoped");
    span.Attr("k", "v");
    EXPECT_TRUE(span.enabled());
  }
  const std::vector<SpanRecord> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GE(spans[0].duration_ns, 0);
  EXPECT_TRUE(HasAttr(spans[0], "k", "v"));
}

TEST(TraceSpanTest, ManualEndIsIdempotentWithDestructor) {
  Trace trace;
  {
    TraceSpan span(&trace, "scoped");
    span.End();
    span.End();  // Explicitly idempotent...
    span.Attr("late", "ignored");  // ...and attrs after End are dropped.
  }  // ...and the destructor is then a no-op.
  const std::vector<SpanRecord> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GE(spans[0].duration_ns, 0);
  EXPECT_TRUE(spans[0].attributes.empty());
}

TEST(TraceSpanTest, DisabledContextIsInert) {
  TraceContext inert;
  EXPECT_FALSE(inert.enabled());
  TraceSpan span(inert, "nothing");
  EXPECT_FALSE(span.enabled());
  span.Attr("k", "v");
  span.AnnotateStatus(InternalError("x"));
  span.End();  // All no-ops; must not crash.
}

TEST(TraceSpanTest, ContextChainsChildrenToParent) {
  Trace trace;
  TraceSpan parent(&trace, "parent");
  {
    TraceSpan child(parent.context(), "child");
    EXPECT_TRUE(child.enabled());
  }
  parent.End();
  const std::vector<SpanRecord> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].parent, spans[0].id);
}

TEST(TraceTest, ConcurrentSpansFromManyThreadsAllRecorded) {
  Trace trace;
  const Trace::SpanId root = trace.BeginSpan("root");
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&trace, root] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span(&trace, "work", root);
        span.Attr("i", static_cast<std::int64_t>(i));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  trace.EndSpan(root);

  const std::vector<SpanRecord> spans = trace.Snapshot();
  EXPECT_EQ(spans.size(), 1u + kThreads * kSpansPerThread);
  EXPECT_EQ(trace.dropped(), 0u);
  for (const SpanRecord& span : spans) {
    EXPECT_GE(span.duration_ns, 0) << span.name << " left open";
    if (span.id != root) {
      EXPECT_EQ(span.parent, root);
    }
  }
  // The exporters must stay coherent on a big multi-threaded trace.
  EXPECT_NE(trace.ToJson().find("\"droppedSpans\": 0"), std::string::npos);
}

}  // namespace
}  // namespace ontorew

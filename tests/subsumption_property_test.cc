// Empirical checks of the paper's subsumption claims (Section 5 and the
// Section 6 conjecture (iii)):
//   * under the simple-TGD restriction, SWR subsumes Linear, Multilinear,
//     Sticky and Sticky-Join;
//   * WR subsumes SWR.
// Randomized simple programs with fixed seeds; each accepted program in a
// baseline class must be SWR, and each SWR program must be WR.

#include "base/rng.h"
#include "classes/linear.h"
#include "classes/sticky.h"
#include "core/swr.h"
#include "core/wr.h"
#include "gtest/gtest.h"
#include "logic/printer.h"
#include "test_util.h"
#include "workload/generators.h"

namespace ontorew {
namespace {

class SubsumptionTest : public ::testing::TestWithParam<int> {};

TEST_P(SubsumptionTest, BaselineClassesImplySwrOnSimplePrograms) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 32452843);
  int linear_seen = 0, multilinear_seen = 0, sticky_seen = 0, sj_seen = 0;
  for (int attempt = 0; attempt < 400; ++attempt) {
    Vocabulary vocab;
    RandomProgramOptions options;
    options.num_rules = rng.UniformIn(2, 6);
    options.num_predicates = rng.UniformIn(2, 5);
    options.max_arity = 3;
    options.max_body_atoms = rng.UniformIn(1, 3);
    options.existential_prob = 0.35;
    TgdProgram program = RandomProgram(options, &rng, &vocab);
    if (!program.IsSimple()) continue;

    bool swr = IsSwr(program);
    if (IsLinear(program)) {
      ++linear_seen;
      EXPECT_TRUE(swr) << "Linear but not SWR:\n" << ToString(program, vocab);
    }
    if (IsMultilinear(program)) {
      ++multilinear_seen;
      EXPECT_TRUE(swr) << "Multilinear but not SWR:\n"
                       << ToString(program, vocab);
    }
    if (IsSticky(program)) {
      ++sticky_seen;
      EXPECT_TRUE(swr) << "Sticky but not SWR:\n" << ToString(program, vocab);
    }
    if (IsStickyJoin(program)) {
      ++sj_seen;
      EXPECT_TRUE(swr) << "Sticky-Join but not SWR:\n"
                       << ToString(program, vocab);
    }
  }
  // The generator must actually exercise each hypothesis.
  EXPECT_GT(linear_seen, 0);
  EXPECT_GT(multilinear_seen, 0);
  EXPECT_GT(sticky_seen, 0);
  EXPECT_GT(sj_seen, 0);
}

TEST_P(SubsumptionTest, SwrImpliesWr) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 49979687);
  int swr_seen = 0;
  for (int attempt = 0; attempt < 150; ++attempt) {
    Vocabulary vocab;
    RandomProgramOptions options;
    options.num_rules = rng.UniformIn(2, 4);
    options.num_predicates = rng.UniformIn(2, 4);
    options.max_arity = 2;
    options.max_body_atoms = 2;
    options.existential_prob = 0.35;
    TgdProgram program = RandomProgram(options, &rng, &vocab);
    if (!IsSwr(program)) continue;
    ++swr_seen;
    EXPECT_TRUE(IsWr(program))
        << "SWR but not WR:\n" << ToString(program, vocab);
  }
  EXPECT_GT(swr_seen, 0);
}

// Programs with repeated variables / constants: SWR is inapplicable by
// definition, but the WR checker must still classify them (Question 2 of
// the paper: pushing the boundary).
TEST_P(SubsumptionTest, WrHandlesNonSimplePrograms) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 67867967);
  int decided = 0;
  for (int attempt = 0; attempt < 60 && decided < 15; ++attempt) {
    Vocabulary vocab;
    RandomProgramOptions options;
    options.num_rules = rng.UniformIn(1, 3);
    options.num_predicates = rng.UniformIn(2, 3);
    options.max_arity = 3;
    options.max_body_atoms = 2;
    options.existential_prob = 0.3;
    options.repeat_prob = 0.3;
    options.constant_prob = 0.15;
    TgdProgram program = RandomProgram(options, &rng, &vocab);
    if (program.IsSimple()) continue;
    StatusOr<WrReport> report = CheckWr(program, vocab, /*max_nodes=*/20000);
    if (report.ok()) ++decided;  // Either verdict is fine; no crashes/caps.
  }
  EXPECT_GT(decided, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubsumptionTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace ontorew

#include "gtest/gtest.h"
#include "logic/program.h"
#include "logic/tgd.h"
#include "test_util.h"
#include "workload/paper_examples.h"

namespace ontorew {
namespace {

TEST(TgdTest, VariableClassification) {
  Vocabulary vocab;
  // Body-only Y2/Y4, head-only Y5, distinguished Y1/Y3.
  Tgd tgd = MustTgd("s(Y1, Y2, Y3), t(Y4) -> r(Y1, Y3, Y5).", &vocab);
  auto names = [&vocab](const std::vector<VariableId>& vars) {
    std::vector<std::string> result;
    for (VariableId v : vars) result.push_back(vocab.VariableName(v));
    return result;
  };
  EXPECT_EQ(names(tgd.DistinguishedVariables()),
            (std::vector<std::string>{"Y1", "Y3"}));
  EXPECT_EQ(names(tgd.ExistentialBodyVariables()),
            (std::vector<std::string>{"Y2", "Y4"}));
  EXPECT_EQ(names(tgd.ExistentialHeadVariables()),
            (std::vector<std::string>{"Y5"}));
}

TEST(TgdTest, IsDistinguishedAndExistentialHead) {
  Vocabulary vocab;
  Tgd tgd = MustTgd("r(X, Y) -> s(X, Z).", &vocab);
  VariableId x = vocab.InternVariable("X");
  VariableId y = vocab.InternVariable("Y");
  VariableId z = vocab.InternVariable("Z");
  EXPECT_TRUE(tgd.IsDistinguished(x));
  EXPECT_FALSE(tgd.IsDistinguished(y));
  EXPECT_FALSE(tgd.IsDistinguished(z));
  EXPECT_TRUE(tgd.IsExistentialHeadVariable(z));
  EXPECT_FALSE(tgd.IsExistentialHeadVariable(x));
}

TEST(TgdTest, SimplicityConditions) {
  Vocabulary vocab;
  // (i) repeated variable in an atom.
  EXPECT_FALSE(MustTgd("r1(X, X) -> s1(X).", &vocab).IsSimple());
  // (ii) constant.
  EXPECT_FALSE(MustTgd("r1(X, a) -> s1(X).", &vocab).IsSimple());
  EXPECT_FALSE(MustTgd("r2(X) -> s2(X, a).", &vocab).IsSimple());
  // (iii) multiple head atoms.
  EXPECT_FALSE(MustTgd("r2(X) -> s1(X), t1(X).", &vocab).IsSimple());
  // All conditions met.
  EXPECT_TRUE(MustTgd("r1(X, Y), s1(Y) -> t3(X, W).", &vocab).IsSimple());
}

TEST(TgdTest, PaperExamplesSimplicity) {
  Vocabulary vocab;
  EXPECT_TRUE(PaperExample1(&vocab).IsSimple());
  Vocabulary vocab2;
  EXPECT_FALSE(PaperExample2(&vocab2).IsSimple());  // s(Y1,Y1,Y2) repeats.
  Vocabulary vocab3;
  EXPECT_FALSE(PaperExample3(&vocab3).IsSimple());  // t(Y3,Y1,Y1) repeats.
}

TEST(TgdProgramTest, Aggregates) {
  Vocabulary vocab;
  TgdProgram program = MustProgram(
      "r(X, Y) -> s(X, Y, Z).\n"
      "s(X, Y, Z) -> r(X, Y).\n",
      &vocab);
  EXPECT_EQ(program.size(), 2);
  EXPECT_EQ(program.MaxArity(), 3);
  EXPECT_TRUE(program.IsSingleHead());
  EXPECT_EQ(program.Predicates().size(), 2u);
  EXPECT_TRUE(program.Constants().empty());
  EXPECT_GE(program.MaxVariableId(), 0);
}

TEST(TgdProgramTest, ConstantsCollected) {
  Vocabulary vocab;
  TgdProgram program =
      MustProgram("r(X, a) -> s(X, b).\nr(X, b) -> s(X, a).\n", &vocab);
  EXPECT_EQ(program.Constants().size(), 2u);
}

TEST(TgdTest, ValidateRejectsEmpty) {
  Tgd empty;
  EXPECT_FALSE(empty.Validate().ok());
}

}  // namespace
}  // namespace ontorew

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "backend/sqlite_backend.h"
#include "base/deadline.h"
#include "chase/chase.h"
#include "db/eval.h"
#include "gtest/gtest.h"
#include "logic/printer.h"
#include "rewriting/dag_rewriter.h"
#include "rewriting/datalog.h"
#include "rewriting/rewriter.h"
#include "workload/corpus.h"

// The completeness-audit corpus runner: every checked-in repro under
// tests/corpus/ (each a minimized differential failure, or a hand-written
// pin of an applicability condition) is replayed on all four evaluation
// legs — flat rewrite -> InMemory, flat rewrite -> SQLite, factor -> CTE
// SQL, DAG rewrite -> CTE SQL — plus the chase oracle, and every leg must
// return exactly the file's [expected] certain answers. Unlike the
// randomized differential harness, which checks agreement, this checks
// ground truth: a bug that breaks all legs the same way still fails here.

namespace ontorew {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(ONTOREW_CORPUS_DIR)) {
    if (entry.path().extension() == ".repro") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Replay budgets: corpus cases are minimized, so these are generous; a
// case that trips them is a termination regression, not a slow test.
RewriterOptions ReplayRewriterOptions() {
  RewriterOptions options;
  options.max_cqs = 20000;
  options.cancel = CancelScope(Deadline::AfterMillis(10000));
  return options;
}

void ExpectLeg(const char* leg, const StatusOr<std::vector<Tuple>>& got,
               const CorpusCase& c, const Vocabulary& vocab) {
  ASSERT_TRUE(got.ok()) << leg << " failed: " << got.status();
  EXPECT_EQ(*got, c.expected)
      << leg << " returned " << got->size() << " answers, expected "
      << c.expected.size() << " (query " << ToString(c.query, vocab) << ")";
}

TEST(CorpusTest, EveryReproReplaysGreenOnAllLegs) {
  const std::vector<std::filesystem::path> files = CorpusFiles();
  // An empty corpus means the directory path broke, not that all is well.
  ASSERT_FALSE(files.empty())
      << "no .repro files under " << ONTOREW_CORPUS_DIR;

  for (const std::filesystem::path& path : files) {
    SCOPED_TRACE(path.filename().string());
    Vocabulary vocab;
    StatusOr<CorpusCase> parsed = ParseCorpusCase(ReadFile(path), &vocab);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    const CorpusCase& c = *parsed;

    // Flat rewriting feeds the first three legs.
    StatusOr<RewriteResult> flat =
        RewriteCq(c.query, c.program, ReplayRewriterOptions());
    ASSERT_TRUE(flat.ok()) << "flat rewrite failed: " << flat.status();

    InMemoryBackend memory;
    ASSERT_TRUE(memory.Load(c.program, c.facts).ok());
    ExpectLeg("flat/InMemory", memory.Execute(flat->ucq, {}), c, vocab);

    SqliteBackend sqlite(&vocab);
    ASSERT_TRUE(sqlite.Load(c.program, c.facts).ok());
    ExpectLeg("flat/SQLite", sqlite.Execute(flat->ucq, {}), c, vocab);

    StatusOr<DatalogProgram> factored = FactorUcq(flat->ucq);
    ASSERT_TRUE(factored.ok()) << "factoring failed: " << factored.status();
    ExpectLeg("factor/CTE", sqlite.ExecuteDatalog(*factored, {}), c, vocab);

    // The DAG leg saturates independently (same saturator, its own gate
    // logic), so it gets its own budget.
    DagRewriteOptions dag_options;
    dag_options.rewriter = ReplayRewriterOptions();
    StatusOr<DagRewriteResult> dag =
        RewriteToDatalog(UnionOfCqs(c.query), c.program, dag_options);
    ASSERT_TRUE(dag.ok()) << "dag rewrite failed: " << dag.status();
    ExpectLeg("dag/CTE", sqlite.ExecuteDatalog(dag->program, {}), c, vocab);

    // The chase oracle validates the checked-in [expected] itself.
    ChaseOptions chase;
    chase.cancel = CancelScope(Deadline::AfterMillis(10000));
    ExpectLeg("chase",
              CertainAnswersViaChase(UnionOfCqs(c.query), c.program, c.facts,
                                     chase),
              c, vocab);
  }
}

// The corpus format round-trips: parse -> render -> parse is a fixpoint,
// so minimizer-emitted files and hand-written files stay interchangeable.
TEST(CorpusTest, FormatRoundTrips) {
  for (const std::filesystem::path& path : CorpusFiles()) {
    SCOPED_TRACE(path.filename().string());
    Vocabulary vocab;
    StatusOr<CorpusCase> first = ParseCorpusCase(ReadFile(path), &vocab);
    ASSERT_TRUE(first.ok()) << first.status();
    const std::string rendered =
        CorpusCaseToString(first->program, first->facts, first->query,
                           first->expected, vocab, {"round-trip"});
    Vocabulary fresh;
    StatusOr<CorpusCase> second = ParseCorpusCase(rendered, &fresh);
    ASSERT_TRUE(second.ok()) << second.status() << "\n" << rendered;
    EXPECT_EQ(second->program.size(), first->program.size());
    EXPECT_EQ(second->expected.size(), first->expected.size());
    EXPECT_EQ(second->query.arity(), first->query.arity());
  }
}

TEST(CorpusTest, ParserRejectsMalformedFiles) {
  Vocabulary vocab;
  // Missing sections.
  EXPECT_FALSE(ParseCorpusCase("", &vocab).ok());
  EXPECT_FALSE(
      ParseCorpusCase("[program]\np(X) -> r(X).\n", &vocab).ok());
  // Out-of-order sections.
  EXPECT_FALSE(ParseCorpusCase("[facts]\np(a).\n[program]\np(X) -> r(X).\n"
                               "[query]\nq(X) :- p(X).\n[expected]\n",
                               &vocab)
                   .ok());
  // Expected arity mismatch against the query.
  EXPECT_FALSE(ParseCorpusCase("[program]\np(X) -> r(X).\n[facts]\np(a).\n"
                               "[query]\nq(X) :- p(X).\n[expected]\n"
                               "q(a, b).\n",
                               &vocab)
                   .ok());
  // Variables in expected answers.
  EXPECT_FALSE(ParseCorpusCase("[program]\np(X) -> r(X).\n[facts]\np(a).\n"
                               "[query]\nq(X) :- p(X).\n[expected]\n"
                               "q(X).\n",
                               &vocab)
                   .ok());
}

}  // namespace
}  // namespace ontorew

#include <string>

#include "core/query_analysis.h"
#include "core/wr.h"
#include "gtest/gtest.h"
#include "rewriting/rewriter.h"
#include "test_util.h"
#include "workload/paper_examples.h"

namespace ontorew {
namespace {

TEST(QueryAnalysisTest, WrProgramsAreSafeForEveryQuery) {
  Vocabulary vocab;
  TgdProgram program = PaperExample1(&vocab);
  for (const char* probe :
       {"q(X, Y) :- r(X, Y).", "q(X) :- s(X, Y, Z).", "q() :- v(X, Y)."}) {
    StatusOr<QuerySafetyReport> report =
        AnalyzeQuerySafety(MustQuery(probe, &vocab), program, vocab);
    ASSERT_TRUE(report.ok()) << probe << ": " << report.status();
    EXPECT_TRUE(report->is_safe) << probe;
  }
}

TEST(QueryAnalysisTest, DangerousQueryOnExample2Detected) {
  Vocabulary vocab;
  TgdProgram program = PaperExample2(&vocab);
  // The paper's own unbounded-chain query.
  StatusOr<QuerySafetyReport> report = AnalyzeQuerySafety(
      MustQuery("q() :- r(\"a\", X).", &vocab), program, vocab);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->is_safe);
  EXPECT_FALSE(report->witness.empty());
  // The rewriter indeed diverges on it.
  RewriterOptions options;
  options.max_cqs = 400;
  EXPECT_FALSE(RewriteCq(MustQuery("q() :- r(\"a\", X).", &vocab), program,
                         options)
                   .ok());
}

TEST(QueryAnalysisTest, HarmlessQueryOnNonWrProgramIsSafe) {
  Vocabulary vocab;
  TgdProgram program = PaperExample2(&vocab);
  // t has no rule head: queries over t alone can never trigger a rewriting
  // step, so they are safe although the program is not WR.
  StatusOr<WrReport> wr = CheckWr(program, vocab);
  ASSERT_TRUE(wr.ok());
  ASSERT_FALSE(wr->is_wr);
  StatusOr<QuerySafetyReport> report = AnalyzeQuerySafety(
      MustQuery("q(X) :- t(X, Y).", &vocab), program, vocab);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->is_safe);
  // And the rewriter terminates for it.
  EXPECT_TRUE(
      RewriteCq(MustQuery("q(X) :- t(X, Y).", &vocab), program).ok());
}

TEST(QueryAnalysisTest, SafetyCorrelatesWithRewriterTermination) {
  // Mixed program: one dangerous component (Example 2 pattern over
  // r, s, t) and one harmless hierarchy (a -> b).
  Vocabulary vocab;
  TgdProgram program = MustProgram(
      "t(Y1, Y2), r(Y3, Y4) -> s(Y1, Y3, Y2).\n"
      "s(Y1, Y1, Y2) -> r(Y2, Y3).\n"
      "a(X) -> b(X).\n",
      &vocab);
  StatusOr<WrReport> wr = CheckWr(program, vocab);
  ASSERT_TRUE(wr.ok());
  EXPECT_FALSE(wr->is_wr);  // The whole program is rejected...

  // ...but the hierarchy-only query is safe and rewrites fine.
  StatusOr<QuerySafetyReport> safe = AnalyzeQuerySafety(
      MustQuery("q(X) :- b(X).", &vocab), program, vocab);
  ASSERT_TRUE(safe.ok());
  EXPECT_TRUE(safe->is_safe);
  EXPECT_TRUE(RewriteCq(MustQuery("q(X) :- b(X).", &vocab), program).ok());

  // The r-query reaches the dangerous cycle.
  StatusOr<QuerySafetyReport> unsafe = AnalyzeQuerySafety(
      MustQuery("q() :- r(c0, X).", &vocab), program, vocab);
  ASSERT_TRUE(unsafe.ok());
  EXPECT_FALSE(unsafe->is_safe);
}

TEST(QueryAnalysisTest, ReportsReachableSubgraphSize) {
  Vocabulary vocab;
  TgdProgram program = PaperExample2(&vocab);
  StatusOr<QuerySafetyReport> narrow = AnalyzeQuerySafety(
      MustQuery("q(X) :- t(X, Y).", &vocab), program, vocab);
  StatusOr<QuerySafetyReport> wide = AnalyzeQuerySafety(
      MustQuery("q(X, Y, Z) :- s(X, Y, Z).", &vocab), program, vocab);
  ASSERT_TRUE(narrow.ok() && wide.ok());
  EXPECT_LT(narrow->num_nodes, wide->num_nodes);
}

TEST(QueryAnalysisTest, MultiHeadRejected) {
  Vocabulary vocab;
  TgdProgram program = MustProgram("r(X) -> s(X), t(X).", &vocab);
  StatusOr<QuerySafetyReport> report = AnalyzeQuerySafety(
      MustQuery("q(X) :- s(X).", &vocab), program, vocab);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ontorew

#include <set>
#include <string>
#include <vector>

#include "core/labels.h"
#include "core/pnode_graph.h"
#include "graph/digraph.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/paper_examples.h"

namespace ontorew {
namespace {

std::set<std::string> SigmaSet(const PNodeGraph& graph,
                               const Vocabulary& vocab) {
  std::set<std::string> sigmas;
  for (const PNode& node : graph.nodes()) {
    sigmas.insert(PAtomToString(node.sigma, vocab));
  }
  return sigmas;
}

TEST(PNodeGraphTest, RequiresSingleHead) {
  Vocabulary vocab;
  TgdProgram program = MustProgram("r(X) -> s(X), t(X).", &vocab);
  StatusOr<PNodeGraph> graph = PNodeGraph::Build(program);
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PNodeGraphTest, InitialNodesAreCanonicalHeads) {
  Vocabulary vocab;
  // Head repeats Y -> initial node t(x1,x2,x2); existential head variables
  // render generic.
  TgdProgram program = MustProgram("r(X, Y) -> t(Z, Y, Y).", &vocab);
  StatusOr<PNodeGraph> graph = PNodeGraph::Build(program);
  ASSERT_TRUE(graph.ok()) << graph.status();
  std::set<std::string> sigmas = SigmaSet(*graph, vocab);
  EXPECT_TRUE(sigmas.count("t(x1,x2,x2)")) << ::testing::PrintToString(sigmas);
}

// Figure 3: the P-node graph of Example 2 contains the paper's drawn
// σ-atoms (the figure shows a pruned view; our saturation also reaches
// further nodes) and the dangerous {d,m,s} cycle.
TEST(PNodeGraphTest, Figure3CoreNodesPresent) {
  Vocabulary vocab;
  TgdProgram program = PaperExample2(&vocab);
  StatusOr<PNodeGraph> graph = PNodeGraph::Build(program);
  ASSERT_TRUE(graph.ok()) << graph.status();
  std::set<std::string> sigmas = SigmaSet(*graph, vocab);
  EXPECT_TRUE(sigmas.count("r(x1,x2)"));
  EXPECT_TRUE(sigmas.count("s(x1,x2,x3)"));
  EXPECT_TRUE(sigmas.count("s(x1,x1,x2)"));
  EXPECT_TRUE(sigmas.count("s(z,z,x1)"));
  EXPECT_TRUE(sigmas.count("t(x1,x2)"));
}

TEST(PNodeGraphTest, Figure3DangerousCycle) {
  Vocabulary vocab;
  TgdProgram program = PaperExample2(&vocab);
  StatusOr<PNodeGraph> graph = PNodeGraph::Build(program);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_TRUE(HasDangerousCycle(graph->graph(),
                                kLabelM | kLabelS | kLabelD,
                                /*forbidden=*/kLabelI));
}

// Example 3: the existential-head applicability restriction must block the
// apparent recursion t -> r -> s -> t. In particular no admissible
// application of R1 exists at any t-node of the form t(a,a,b).
TEST(PNodeGraphTest, Example3RecursionBlocked) {
  Vocabulary vocab;
  TgdProgram program = PaperExample3(&vocab);
  StatusOr<PNodeGraph> graph = PNodeGraph::Build(program);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_FALSE(HasDangerousCycle(graph->graph(),
                                 kLabelM | kLabelS | kLabelD,
                                 /*forbidden=*/kLabelI));
  // Stronger: the graph has no cycle at all — the recursion is fully
  // blocked by the repeated-variable/existential interplay.
  EXPECT_FALSE(HasDangerousCycle(graph->graph(), /*required=*/0,
                                 /*forbidden=*/0));
}

TEST(PNodeGraphTest, IsolatedBodyAtomsGetIEdges) {
  Vocabulary vocab;
  // t(W) shares no variable with head or the rest of the body: edges to it
  // carry i.
  TgdProgram program = MustProgram("s(X, Y), t(W) -> r(X).", &vocab);
  StatusOr<PNodeGraph> graph = PNodeGraph::Build(program);
  ASSERT_TRUE(graph.ok()) << graph.status();
  bool saw_i_edge = false;
  for (const LabeledDigraph::Edge& edge : graph->graph().edges()) {
    const PNode& target = graph->nodes()[static_cast<std::size_t>(edge.to)];
    if (vocab.PredicateName(target.sigma.predicate()) == "t") {
      EXPECT_NE(edge.labels & kLabelI, 0);
      saw_i_edge = true;
    } else {
      EXPECT_EQ(edge.labels & kLabelI, 0);
    }
  }
  EXPECT_TRUE(saw_i_edge);
}

TEST(PNodeGraphTest, ConstantsFlowIntoNodes) {
  Vocabulary vocab;
  TgdProgram program = MustProgram("p(X, c0) -> q(X).\nq(X) -> p(X, Y).\n",
                                   &vocab);
  StatusOr<PNodeGraph> graph = PNodeGraph::Build(program);
  ASSERT_TRUE(graph.ok()) << graph.status();
  std::set<std::string> sigmas = SigmaSet(*graph, vocab);
  EXPECT_TRUE(sigmas.count("p(x1,c0)")) << ::testing::PrintToString(sigmas);
}

TEST(PNodeGraphTest, NodeCapReported) {
  Vocabulary vocab;
  TgdProgram program = PaperExample2(&vocab);
  PNodeGraphOptions options;
  options.max_nodes = 2;
  StatusOr<PNodeGraph> graph = PNodeGraph::Build(program, options);
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kResourceExhausted);
}

TEST(PNodeGraphTest, TraceAbsorptionEndsTrace) {
  Vocabulary vocab;
  // p(X) -> r(X, Y): rewriting r(a, b) absorbs b. From the initial node
  // r(x1,x2), the only successors are p-nodes; no successor may carry the
  // trace of x2 (it is absorbed, not continued).
  TgdProgram program = MustProgram("p(X) -> r(X, Y).", &vocab);
  StatusOr<PNodeGraph> graph = PNodeGraph::Build(program);
  ASSERT_TRUE(graph.ok()) << graph.status();
  for (const PNode& node : graph->nodes()) {
    if (vocab.PredicateName(node.sigma.predicate()) == "p") {
      EXPECT_FALSE(node.has_trace);
    }
  }
}

TEST(PNodeGraphTest, AdmissibilityRejectsConstantAbsorption) {
  Vocabulary vocab;
  // Head r(X, Y) with Y existential cannot produce r(x, c): a query atom
  // with a constant in the existential position blocks the application.
  // We model the query atom via the second rule's body.
  TgdProgram program = MustProgram(
      "p(X) -> r(X, Y).\n"
      "r(X, c0) -> w(X).\n",
      &vocab);
  StatusOr<PNodeGraph> graph = PNodeGraph::Build(program);
  ASSERT_TRUE(graph.ok()) << graph.status();
  // From the w-head node, rewriting yields r(x1, c0); applying rule 1
  // there would absorb the constant -> inadmissible -> r(x1,c0) is a sink.
  for (const LabeledDigraph::Edge& edge : graph->graph().edges()) {
    const PNode& from = graph->nodes()[static_cast<std::size_t>(edge.from)];
    if (vocab.PredicateName(from.sigma.predicate()) == "r" &&
        from.sigma.term(1).is_constant()) {
      ADD_FAILURE() << "r(x1,c0) must have no outgoing edges, found one to "
                    << ToString(
                           graph->nodes()[static_cast<std::size_t>(edge.to)],
                           vocab);
    }
  }
}

TEST(PNodeGraphTest, DeterministicAcrossRebuilds) {
  Vocabulary vocab;
  TgdProgram program = PaperExample3(&vocab);
  StatusOr<PNodeGraph> a = PNodeGraph::Build(program);
  StatusOr<PNodeGraph> b = PNodeGraph::Build(program);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->num_nodes(), b->num_nodes());
  EXPECT_EQ(a->graph().num_edges(), b->graph().num_edges());
}

}  // namespace
}  // namespace ontorew

// Plan-quality tests: the index-nested-loop matcher must exploit the
// per-column indexes — observable through the EvalStats counters rather
// than timing.

#include <string>
#include <vector>

#include "base/rng.h"
#include "base/strings.h"
#include "db/database.h"
#include "db/eval.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ontorew {
namespace {

// A star schema: fact(k, d) with many k, dim(d) small.
class EvalStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fact_ = vocab_.MustPredicate("fact", 2);
    dim_ = vocab_.MustPredicate("dim", 1);
    for (int i = 0; i < 1000; ++i) {
      db_.Insert(fact_, {Value::Constant(vocab_.InternConstant(
                             StrCat("k", i))),
                         Value::Constant(vocab_.InternConstant(
                             StrCat("d", i % 10)))});
    }
    db_.Insert(dim_, {Value::Constant(vocab_.InternConstant("d3"))});
  }

  Vocabulary vocab_;
  Database db_;
  PredicateId fact_, dim_;
};

TEST_F(EvalStatsTest, ConstantSelectionUsesIndex) {
  // fact(k500, Y): the column-0 index narrows to one tuple.
  ConjunctiveQuery cq = MustQuery("q(Y) :- fact(k500, Y).", &vocab_);
  EvalStats stats;
  std::vector<Tuple> answers = Evaluate(cq, db_, {}, &stats);
  EXPECT_EQ(answers.size(), 1u);
  EXPECT_LE(stats.tuples_examined, 2);  // Not a 1000-tuple scan.
}

TEST_F(EvalStatsTest, BoundFirstOrderingDrivesTheJoin) {
  // dim is tiny: the matcher must start there, then use the fact index on
  // column 2 — examining ~1 dim tuple + ~100 matching fact tuples, not
  // 1000 * 1.
  ConjunctiveQuery cq = MustQuery("q(X) :- fact(X, D), dim(D).", &vocab_);
  EvalStats stats;
  std::vector<Tuple> answers = Evaluate(cq, db_, {}, &stats);
  EXPECT_EQ(answers.size(), 100u);  // k3, k13, ..., k993.
  EXPECT_LE(stats.tuples_examined, 150);
  EXPECT_EQ(stats.matches, 100);
}

TEST_F(EvalStatsTest, UnboundScanIsCounted) {
  ConjunctiveQuery cq = MustQuery("q(X, Y) :- fact(X, Y).", &vocab_);
  EvalStats stats;
  Evaluate(cq, db_, {}, &stats);
  EXPECT_EQ(stats.tuples_examined, 1000);
  EXPECT_EQ(stats.matches, 1000);
}

TEST_F(EvalStatsTest, StatsAccumulateAcrossUnion) {
  UnionOfCqs ucq;
  ucq.Add(MustQuery("q(Y) :- fact(k1, Y).", &vocab_));
  ucq.Add(MustQuery("q(Y) :- fact(k2, Y).", &vocab_));
  EvalStats stats;
  Evaluate(ucq, db_, {}, &stats);
  EXPECT_EQ(stats.matches, 2);
  EXPECT_LE(stats.tuples_examined, 4);
}

TEST_F(EvalStatsTest, NullStatsPointerIsFine) {
  ConjunctiveQuery cq = MustQuery("q(Y) :- fact(k1, Y).", &vocab_);
  EXPECT_EQ(Evaluate(cq, db_).size(), 1u);
}

}  // namespace
}  // namespace ontorew

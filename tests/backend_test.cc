#include "backend/backend.h"

#include <memory>
#include <string>
#include <vector>

#include "backend/sqlite_backend.h"
#include "base/deadline.h"
#include "base/fault_point.h"
#include "base/rng.h"
#include "db/eval.h"
#include "gtest/gtest.h"
#include "rewriting/datalog.h"
#include "rewriting/rewriter.h"
#include "rewriting/sql.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/university.h"

// Round-trip tests: the emitted SQL is *executed* on real SQLite and the
// decoded answers compared against the in-memory evaluator — asserting
// results, not strings. Every historical emission bug class (reserved
// words, quote escaping, boolean queries, repeated variables, 0-ary DDL)
// gets an executed regression here.

namespace ontorew {
namespace {

// Loads `db` into both backends and checks that they agree with the
// reference evaluator on `ucq`; returns the answers.
std::vector<Tuple> ExpectBackendsAgree(const TgdProgram& program,
                                       const Database& db,
                                       const UnionOfCqs& ucq,
                                       Vocabulary* vocab) {
  EvalOptions reference_options{.drop_tuples_with_nulls = true, .cancel = {}};
  std::vector<Tuple> reference = Evaluate(ucq, db, reference_options);

  InMemoryBackend memory;
  EXPECT_TRUE(memory.Load(program, db).ok());
  SqliteBackend sqlite(vocab);
  Status load = sqlite.Load(program, db);
  EXPECT_TRUE(load.ok()) << load;

  BackendExecOptions exec;
  StatusOr<std::vector<Tuple>> from_memory = memory.Execute(ucq, exec);
  StatusOr<std::vector<Tuple>> from_sqlite = sqlite.Execute(ucq, exec);
  EXPECT_TRUE(from_memory.ok()) << from_memory.status();
  EXPECT_TRUE(from_sqlite.ok()) << from_sqlite.status();
  if (from_memory.ok() && from_sqlite.ok()) {
    EXPECT_EQ(*from_memory, reference);
    EXPECT_EQ(*from_sqlite, reference);
  }
  return reference;
}

TEST(BackendTest, SingleTableProjectionExecutes) {
  Vocabulary vocab;
  TgdProgram program = MustProgram("r(X, Y) -> s(X).", &vocab);
  Database db;
  PredicateId r = vocab.FindPredicate("r");
  auto c = [&](const char* name) {
    return Value::Constant(vocab.InternConstant(name));
  };
  db.Insert(r, {c("a"), c("b")});
  db.Insert(r, {c("b"), c("c")});

  UnionOfCqs q(MustQuery("q(X, Y) :- r(X, Y).", &vocab));
  std::vector<Tuple> answers = ExpectBackendsAgree(program, db, q, &vocab);
  EXPECT_EQ(answers.size(), 2u);
}

TEST(BackendTest, ReservedWordPredicatesExecute) {
  // Every one of these predicate names is a SQL keyword; executing the
  // DDL and the query on real SQLite is the only honest test that the
  // quoting sweep in SqlIdentifier is complete enough.
  Vocabulary vocab;
  for (const char* keyword :
       {"order", "select", "group", "distinct", "limit", "index", "primary",
        "between", "exists", "join", "union", "check", "default", "left",
        "natural", "transaction", "values", "offset", "cast"}) {
    TgdProgram program;
    PredicateId p = vocab.MustPredicate(keyword, 2);
    Database db;
    auto c = [&](const char* name) {
      return Value::Constant(vocab.InternConstant(name));
    };
    db.Insert(p, {c("a"), c("b")});
    db.Insert(p, {c("b"), c("b")});

    ConjunctiveQuery q(
        std::vector<Term>{Term::Var(vocab.InternVariable("X"))},
        {Atom(p, {Term::Var(vocab.InternVariable("X")),
                  Term::Const(vocab.InternConstant("b"))})});
    std::vector<Tuple> answers =
        ExpectBackendsAgree(program, db, UnionOfCqs(q), &vocab);
    EXPECT_EQ(answers.size(), 2u) << "predicate '" << keyword << "'";
  }
}

TEST(BackendTest, EmbeddedQuotesRoundTrip) {
  // Constants with interior single and double quotes survive insert,
  // comparison and decode.
  Vocabulary vocab;
  TgdProgram program;
  PredicateId r = vocab.MustPredicate("r", 2);
  ConstantId ohara = vocab.InternConstant("\"o'hara\"");
  ConstantId tall = vocab.InternConstant("\"5\" tall\"");
  ConstantId plain = vocab.InternConstant("plain");
  Database db;
  db.Insert(r, {Value::Constant(plain), Value::Constant(ohara)});
  db.Insert(r, {Value::Constant(ohara), Value::Constant(tall)});

  // q(X) :- r(X, "o'hara"): matches exactly the first tuple.
  ConjunctiveQuery q(std::vector<Term>{Term::Var(vocab.InternVariable("X"))},
                     {Atom(r, {Term::Var(vocab.InternVariable("X")),
                               Term::Const(ohara)})});
  std::vector<Tuple> answers =
      ExpectBackendsAgree(program, db, UnionOfCqs(q), &vocab);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0], Tuple{Value::Constant(plain)});

  // The decoded answer value round-trips through the interner: asking
  // for the tuple whose *answer* is the quoted constant works too.
  ConjunctiveQuery q2(std::vector<Term>{Term::Var(vocab.InternVariable("Y"))},
                      {Atom(r, {Term::Const(ohara),
                                Term::Var(vocab.InternVariable("Y"))})});
  std::vector<Tuple> answers2 =
      ExpectBackendsAgree(program, db, UnionOfCqs(q2), &vocab);
  ASSERT_EQ(answers2.size(), 1u);
  EXPECT_EQ(answers2[0], Tuple{Value::Constant(tall)});
}

TEST(BackendTest, BooleanQueryExecutes) {
  Vocabulary vocab;
  TgdProgram program = MustProgram("r(X, Y) -> s(X).", &vocab);
  Database db;
  PredicateId r = vocab.FindPredicate("r");
  db.Insert(r, {Value::Constant(vocab.InternConstant("a")),
                Value::Constant(vocab.InternConstant("b"))});

  // True: one empty tuple, not a tuple containing the literal 1.
  UnionOfCqs yes(MustQuery("q() :- r(X, Y).", &vocab));
  std::vector<Tuple> truthy = ExpectBackendsAgree(program, db, yes, &vocab);
  ASSERT_EQ(truthy.size(), 1u);
  EXPECT_TRUE(truthy[0].empty());

  // False: no rows at all (s holds no facts).
  UnionOfCqs no(MustQuery("q() :- s(X).", &vocab));
  EXPECT_TRUE(ExpectBackendsAgree(program, db, no, &vocab).empty());

  // A union of boolean disjuncts still collapses to a single empty tuple.
  UnionOfCqs both;
  both.Add(MustQuery("q() :- r(X, Y).", &vocab));
  both.Add(MustQuery("q() :- r(Y, X).", &vocab));
  EXPECT_EQ(ExpectBackendsAgree(program, db, both, &vocab).size(), 1u);
}

TEST(BackendTest, RepeatedVariableInOneAtomExecutes) {
  Vocabulary vocab;
  TgdProgram program;
  PredicateId r = vocab.MustPredicate("r", 3);
  auto c = [&](const char* name) {
    return Value::Constant(vocab.InternConstant(name));
  };
  Database db;
  db.Insert(r, {c("a"), c("a"), c("b")});
  db.Insert(r, {c("a"), c("b"), c("b")});
  db.Insert(r, {c("c"), c("c"), c("c")});

  // q(X, Z) :- r(X, X, Z): only the diagonal-in-the-first-two tuples.
  VariableId x = vocab.InternVariable("X");
  VariableId z = vocab.InternVariable("Z");
  ConjunctiveQuery q(std::vector<Term>{Term::Var(x), Term::Var(z)},
                     {Atom(r, {Term::Var(x), Term::Var(x), Term::Var(z)})});
  std::vector<Tuple> answers =
      ExpectBackendsAgree(program, db, UnionOfCqs(q), &vocab);
  ASSERT_EQ(answers.size(), 2u);
}

TEST(BackendTest, ZeroAryPredicateExecutes) {
  // CREATE TABLE p () is a SQL syntax error; the sentinel-column DDL from
  // TableToSql must make propositional predicates executable.
  Vocabulary vocab;
  TgdProgram program;
  PredicateId marked = vocab.MustPredicate("marked", 0);
  PredicateId unmarked = vocab.MustPredicate("unmarked", 0);
  Database db;
  db.Insert(marked, {});

  ConjunctiveQuery q_true(std::vector<Term>{}, {Atom(marked, {})});
  std::vector<Tuple> truthy =
      ExpectBackendsAgree(program, db, UnionOfCqs(q_true), &vocab);
  ASSERT_EQ(truthy.size(), 1u);
  EXPECT_TRUE(truthy[0].empty());

  ConjunctiveQuery q_false(std::vector<Term>{}, {Atom(unmarked, {})});
  EXPECT_TRUE(
      ExpectBackendsAgree(program, db, UnionOfCqs(q_false), &vocab).empty());
}

TEST(BackendTest, ConstantAnswerTermRoundTrips) {
  Vocabulary vocab;
  TgdProgram program;
  PredicateId r = vocab.MustPredicate("r", 1);
  ConstantId tag = vocab.InternConstant("tag");
  Database db;
  db.Insert(r, {Value::Constant(vocab.InternConstant("a"))});

  VariableId x = vocab.InternVariable("X");
  ConjunctiveQuery q(std::vector<Term>{Term::Const(tag), Term::Var(x)},
                     {Atom(r, {Term::Var(x)})});
  std::vector<Tuple> answers =
      ExpectBackendsAgree(program, db, UnionOfCqs(q), &vocab);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], Value::Constant(tag));
}

TEST(BackendTest, NullsJoinByIdentityAndAreDroppedFromAnswers) {
  // A chase-produced database stores labeled nulls; the SQL encoding must
  // equate a null only with itself, and certain-answer execution must
  // drop tuples that still contain one.
  Vocabulary vocab;
  TgdProgram program;
  PredicateId r = vocab.MustPredicate("r", 2);
  PredicateId s = vocab.MustPredicate("s", 1);
  Database db;
  Value a = Value::Constant(vocab.InternConstant("a"));
  Value n0 = db.FreshNull();
  Value n1 = db.FreshNull();
  db.Insert(r, {a, n0});
  db.Insert(r, {n1, a});
  db.Insert(s, {n0});

  // q(X) :- r(X, Y), s(Y): Y must bind the same null in both atoms, so
  // only (a, n0) joins — and the answer `a` is null-free.
  UnionOfCqs q(MustQuery("q(X) :- r(X, Y), s(Y).", &vocab));
  std::vector<Tuple> certain =
      ExpectBackendsAgree(program, db, q, &vocab);
  ASSERT_EQ(certain.size(), 1u);
  EXPECT_EQ(certain[0], Tuple{a});

  // With drop_tuples_with_nulls off, the null answers come back — and
  // decode to the same null ids the in-memory path reports.
  UnionOfCqs all(MustQuery("q(X) :- r(X, Y).", &vocab));
  SqliteBackend sqlite(&vocab);
  ASSERT_TRUE(sqlite.Load(program, db).ok());
  BackendExecOptions keep_nulls;
  keep_nulls.drop_tuples_with_nulls = false;
  StatusOr<std::vector<Tuple>> answers = sqlite.Execute(all, keep_nulls);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(*answers, (std::vector<Tuple>{{a}, {n1}}));
}

TEST(BackendTest, AmbiguousConstantEncodingRejectedAtLoad) {
  // `a` and `"a"` are distinct constants in-memory but identical TEXT in
  // SQL; silently loading them would make the backends disagree, so Load
  // must refuse.
  Vocabulary vocab;
  TgdProgram program;
  PredicateId r = vocab.MustPredicate("r", 1);
  Database db;
  db.Insert(r, {Value::Constant(vocab.InternConstant("a"))});
  db.Insert(r, {Value::Constant(vocab.InternConstant("\"a\""))});

  SqliteBackend sqlite(&vocab);
  Status load = sqlite.Load(program, db);
  EXPECT_EQ(load.code(), StatusCode::kInvalidArgument) << load;
}

TEST(BackendTest, UnknownPredicateIsEmptyNotError) {
  // The in-memory evaluator treats a relation with no facts as empty;
  // SQLite must not answer "no such table" instead.
  Vocabulary vocab;
  TgdProgram program = MustProgram("r(X, Y) -> s(X).", &vocab);
  Database db;

  SqliteBackend sqlite(&vocab);
  ASSERT_TRUE(sqlite.Load(program, db).ok());
  // `fresh` is not in the program or the data: interned after Load.
  UnionOfCqs q(MustQuery("q(X) :- fresh(X, Y).", &vocab));
  StatusOr<std::vector<Tuple>> answers = sqlite.Execute(q, {});
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_TRUE(answers->empty());
}

TEST(BackendTest, ExecuteBeforeLoadFails) {
  Vocabulary vocab;
  UnionOfCqs q(MustQuery("q(X) :- r(X).", &vocab));
  SqliteBackend sqlite(&vocab);
  EXPECT_EQ(sqlite.Execute(q, {}).status().code(),
            StatusCode::kFailedPrecondition);
  InMemoryBackend memory;
  EXPECT_EQ(memory.Execute(q, {}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(BackendTest, EmptyUcqIsRejectedNotEmptyAnswer) {
  // An empty union must keep failing with InvalidArgument (as UcqToSql
  // reports), not slip through the chunking loop as zero statements and
  // come back as an empty answer set.
  Vocabulary vocab;
  SqliteBackend sqlite(&vocab);
  ASSERT_TRUE(sqlite.Load(TgdProgram(), Database()).ok());
  EXPECT_EQ(sqlite.Execute(UnionOfCqs(), {}).status().code(),
            StatusCode::kInvalidArgument);
}

// Five single-atom disjuncts over distinct predicates: nothing to
// factor, so FactorUcq yields one output rule per disjunct. Every
// predicate holds a shared constant (exercising cross-chunk dedup) plus
// one of its own.
UnionOfCqs MakeUnsharedUnion(int disjuncts, Database* db, Vocabulary* vocab) {
  UnionOfCqs ucq;
  for (int i = 0; i < disjuncts; ++i) {
    const std::string name = "p" + std::to_string(i);
    PredicateId p = vocab->MustPredicate(name, 1);
    db->Insert(p, {Value::Constant(vocab->InternConstant("shared"))});
    db->Insert(p, {Value::Constant(
                      vocab->InternConstant("only" + std::to_string(i)))});
    ucq.Add(MustQuery("q(X) :- " + name + "(X).", vocab));
  }
  return ucq;
}

TEST(BackendTest, OversizedUnionChunksAcrossCompoundLimit) {
  // With SQLITE_LIMIT_COMPOUND_SELECT lowered to 2, a 5-disjunct union
  // cannot be prepared as one statement; Execute must chunk it and merge
  // (sort + dedup) the per-chunk answer sets.
  Vocabulary vocab;
  Database db;
  UnionOfCqs ucq = MakeUnsharedUnion(5, &db, &vocab);
  EvalOptions reference_options{.drop_tuples_with_nulls = true, .cancel = {}};
  std::vector<Tuple> reference = Evaluate(ucq, db, reference_options);
  ASSERT_EQ(reference.size(), 6u);  // "shared" deduped across chunks.

  SqliteBackend sqlite(&vocab);
  ASSERT_TRUE(sqlite.Load(TgdProgram(), db).ok());
  ASSERT_TRUE(sqlite.SetCompoundSelectLimitForTest(2).ok());
  StatusOr<std::vector<Tuple>> answers = sqlite.Execute(ucq, {});
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(*answers, reference);
}

TEST(BackendTest, WideDatalogProgramFallsBackWithoutDeadlock) {
  // A factored program whose output union is wider than
  // SQLITE_LIMIT_COMPOUND_SELECT cannot be emitted as one WITH-CTE
  // statement; ExecuteDatalog must fall back to the unfolded chunked
  // Execute path *after* releasing the connection mutex — a regression
  // here self-deadlocks (the fallback re-enters Execute, which locks the
  // same non-recursive mutex) instead of failing an assertion.
  Vocabulary vocab;
  Database db;
  UnionOfCqs ucq = MakeUnsharedUnion(5, &db, &vocab);
  StatusOr<DatalogProgram> factored = FactorUcq(ucq);
  ASSERT_TRUE(factored.ok()) << factored.status();
  EXPECT_EQ(factored->cte_count(), 0);  // No shareable structure.
  ASSERT_GT(factored->output.size(), 2u);

  EvalOptions reference_options{.drop_tuples_with_nulls = true, .cancel = {}};
  std::vector<Tuple> reference = Evaluate(ucq, db, reference_options);

  SqliteBackend sqlite(&vocab);
  ASSERT_TRUE(sqlite.Load(TgdProgram(), db).ok());
  ASSERT_TRUE(sqlite.SetCompoundSelectLimitForTest(2).ok());
  StatusOr<std::vector<Tuple>> answers = sqlite.ExecuteDatalog(*factored, {});
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(*answers, reference);
}

TEST(BackendTest, DeadlineMapsToProgressHandler) {
  // A cartesian product far too large to finish: the progress handler
  // must notice the deadline mid-statement and interrupt, returning
  // DeadlineExceeded promptly instead of scanning to completion.
  Vocabulary vocab;
  TgdProgram program;
  PredicateId r = vocab.MustPredicate("r", 2);
  Database db;
  for (int i = 0; i < 300; ++i) {
    db.Insert(r, {Value::Constant(vocab.InternConstant("x" +
                                                       std::to_string(i))),
                  Value::Constant(vocab.InternConstant("y" +
                                                       std::to_string(i)))});
  }
  SqliteBackend sqlite(&vocab);
  ASSERT_TRUE(sqlite.Load(program, db).ok());

  UnionOfCqs q(MustQuery("q() :- r(A, B), r(C, D), r(E, F), r(G, H).",
                         &vocab));
  BackendExecOptions exec;
  exec.cancel = CancelScope(Deadline::AfterMillis(50));
  const auto start = Deadline::Clock::now();
  StatusOr<std::vector<Tuple>> answers = sqlite.Execute(q, exec);
  const auto elapsed = Deadline::Clock::now() - start;
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kDeadlineExceeded)
      << answers.status();
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

TEST(BackendTest, CancelledTokenInterruptsExecution) {
  Vocabulary vocab;
  TgdProgram program;
  PredicateId r = vocab.MustPredicate("r", 1);
  Database db;
  db.Insert(r, {Value::Constant(vocab.InternConstant("a"))});
  SqliteBackend sqlite(&vocab);
  ASSERT_TRUE(sqlite.Load(program, db).ok());

  auto token = std::make_shared<CancelToken>();
  token->Cancel();
  BackendExecOptions exec;
  exec.cancel = CancelScope(Deadline::Infinite(), token);
  UnionOfCqs q(MustQuery("q(X) :- r(X).", &vocab));
  EXPECT_EQ(sqlite.Execute(q, exec).status().code(), StatusCode::kCancelled);
}

TEST(BackendTest, InjectedBackendFaultSurfaces) {
  Vocabulary vocab;
  TgdProgram program;
  PredicateId r = vocab.MustPredicate("r", 1);
  Database db;
  db.Insert(r, {Value::Constant(vocab.InternConstant("a"))});
  SqliteBackend sqlite(&vocab);
  ASSERT_TRUE(sqlite.Load(program, db).ok());

  ScopedFault fault("backend.exec", {});
  UnionOfCqs q(MustQuery("q(X) :- r(X).", &vocab));
  EXPECT_EQ(sqlite.Execute(q, {}).status().code(), StatusCode::kInternal);
}

TEST(BackendTest, ReloadReplacesAllData) {
  Vocabulary vocab;
  TgdProgram program = MustProgram("r(X, Y) -> s(X).", &vocab);
  PredicateId r = vocab.FindPredicate("r");
  auto c = [&](const char* name) {
    return Value::Constant(vocab.InternConstant(name));
  };
  Database first;
  first.Insert(r, {c("a"), c("b")});
  first.Insert(r, {c("c"), c("d")});
  Database second;
  second.Insert(r, {c("e"), c("f")});

  SqliteBackend sqlite(&vocab);
  ASSERT_TRUE(sqlite.Load(program, first).ok());
  StatusOr<std::int64_t> stored = sqlite.StoredTuples();
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(*stored, 2);

  ASSERT_TRUE(sqlite.Load(program, second).ok());
  stored = sqlite.StoredTuples();
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(*stored, 1);

  UnionOfCqs q(MustQuery("q(X) :- r(X, Y).", &vocab));
  StatusOr<std::vector<Tuple>> answers = sqlite.Execute(q, {});
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(*answers, std::vector<Tuple>{{c("e")}});
}

TEST(BackendTest, UniversityRewritingAgreesAcrossBackends) {
  // The acceptance workload: every rewritten university query returns
  // identical certain-answer sets on both backends.
  Vocabulary vocab;
  TgdProgram ontology = UniversityOntology(&vocab);
  Rng rng(20240806);
  UniversityInstanceOptions options;
  options.num_professors = 5;
  options.num_lecturers = 5;
  options.num_students = 40;
  options.num_phd_students = 6;
  options.num_courses = 10;
  Database db = UniversityInstance(options, &rng, &vocab);

  for (const char* text :
       {"q(X) :- person(X).", "q(X) :- faculty(X).", "q(X) :- course(X).",
        "q(X, Y) :- teaches(X, Y).", "q(X) :- advises(X, Y), student(Y).",
        "q() :- phd(X)."}) {
    StatusOr<RewriteResult> rewriting =
        RewriteCq(MustQuery(text, &vocab), ontology);
    ASSERT_TRUE(rewriting.ok()) << text << ": " << rewriting.status();
    ExpectBackendsAgree(ontology, db, rewriting->ucq, &vocab);
  }
}

// --- SQLITE_BUSY retry/backoff ----------------------------------------------

// A tiny instance shared by the busy tests.
struct BusyFixture {
  Vocabulary vocab;
  TgdProgram program;
  Database db;
  UnionOfCqs query;

  BusyFixture()
      : program(MustProgram("r(X, Y) -> s(X).", &vocab)),
        query(MustQuery("q(X, Y) :- r(X, Y).", &vocab)) {
    PredicateId r = vocab.FindPredicate("r");
    auto c = [&](const char* name) {
      return Value::Constant(vocab.InternConstant(name));
    };
    db.Insert(r, {c("a"), c("b")});
  }
};

TEST(BackendTest, BusyRetriesExhaustToRetryableUnavailable) {
  FaultQuiesce quiesce;
  BusyFixture fx;
  SqliteBackendOptions options;
  options.busy_max_retries = 3;
  options.busy_initial_backoff = std::chrono::microseconds(50);
  options.busy_max_backoff = std::chrono::microseconds(200);
  SqliteBackend backend(&fx.vocab, options);
  ASSERT_TRUE(backend.Load(fx.program, fx.db).ok());

  // Permanent contention: every attempt reports SQLITE_BUSY. After
  // busy_max_retries backoffs the backend gives up with the RETRYABLE
  // Unavailable — the caller (or the server's client) decides whether to
  // come back, the backend never spins forever.
  FaultRegistry::Global().Arm("backend.busy", {.probability = 1.0});
  BackendExecOptions exec;
  StatusOr<std::vector<Tuple>> result = backend.Execute(fx.query, exec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetryableStatusCode(result.status().code()));
  // busy_retries() counts busy HITS: three absorbed by backoff plus the
  // fourth that exhausted the cap.
  EXPECT_EQ(backend.busy_retries(), 4);
}

TEST(BackendTest, BusyBurstIsAbsorbedByBackoff) {
  FaultQuiesce quiesce;
  BusyFixture fx;
  SqliteBackendOptions options;
  options.busy_initial_backoff = std::chrono::microseconds(50);
  options.busy_max_backoff = std::chrono::microseconds(200);
  SqliteBackend backend(&fx.vocab, options);
  ASSERT_TRUE(backend.Load(fx.program, fx.db).ok());

  // A finite busy burst (three hits, then the lock clears): the bounded
  // backoff rides it out and the caller sees only a successful result.
  int busy_left = 3;
  FaultPointConfig burst;
  burst.probability = 1.0;
  burst.handler = [&busy_left](std::string_view) {
    if (busy_left > 0) {
      --busy_left;
      return InternalError("synthetic SQLITE_BUSY");
    }
    return Status::Ok();
  };
  FaultRegistry::Global().Arm("backend.busy", burst);

  BackendExecOptions exec;
  StatusOr<std::vector<Tuple>> result = backend.Execute(fx.query, exec);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 1u);
  EXPECT_EQ(busy_left, 0);
  EXPECT_GE(backend.busy_retries(), 3);
}

TEST(BackendTest, BusyBackoffRespectsRequestDeadline) {
  FaultQuiesce quiesce;
  BusyFixture fx;
  SqliteBackendOptions options;
  options.busy_max_retries = 1000;
  options.busy_initial_backoff = std::chrono::milliseconds(5);
  options.busy_max_backoff = std::chrono::milliseconds(5);
  SqliteBackend backend(&fx.vocab, options);
  ASSERT_TRUE(backend.Load(fx.program, fx.db).ok());

  FaultRegistry::Global().Arm("backend.busy", {.probability = 1.0});
  BackendExecOptions exec;
  exec.cancel = CancelScope(Deadline::AfterMillis(20));
  StatusOr<std::vector<Tuple>> result = backend.Execute(fx.query, exec);
  // The backoff loop must not sleep past the caller's budget: with a
  // 20ms deadline and 1000 permitted retries the loop stops on the
  // deadline, not the retry cap.
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(backend.busy_retries(), 100);
}

}  // namespace
}  // namespace ontorew

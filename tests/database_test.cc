#include <string>

#include "db/database.h"
#include "db/value.h"
#include "gtest/gtest.h"
#include "logic/vocabulary.h"

namespace ontorew {
namespace {

TEST(ValueTest, KindsAndEquality) {
  Value c = Value::Constant(3);
  Value n = Value::Null(3);
  EXPECT_TRUE(c.is_constant());
  EXPECT_TRUE(n.is_null());
  EXPECT_NE(c, n);
  EXPECT_LT(c, n);  // Constants order before nulls.
  EXPECT_NE(c.Hash(), n.Hash());
}

TEST(ValueTest, ToStringFormats) {
  Vocabulary vocab;
  ConstantId alice = vocab.InternConstant("alice");
  EXPECT_EQ(ToString(Value::Constant(alice), vocab), "alice");
  EXPECT_EQ(ToString(Value::Null(7), vocab), "_:n7");
  EXPECT_EQ(ToString(Tuple{Value::Constant(alice), Value::Null(0)}, vocab),
            "(alice, _:n0)");
}

TEST(RelationTest, InsertDedupes) {
  Relation relation(2);
  Tuple t = {Value::Constant(0), Value::Constant(1)};
  EXPECT_TRUE(relation.Insert(t));
  EXPECT_FALSE(relation.Insert(t));
  EXPECT_EQ(relation.size(), 1);
  EXPECT_TRUE(relation.Contains(t));
  EXPECT_FALSE(relation.Contains({Value::Constant(1), Value::Constant(0)}));
}

TEST(RelationTest, ColumnIndexFindsTuples) {
  Relation relation(2);
  relation.Insert({Value::Constant(0), Value::Constant(1)});
  relation.Insert({Value::Constant(0), Value::Constant(2)});
  relation.Insert({Value::Constant(3), Value::Constant(1)});
  EXPECT_EQ(relation.TuplesWith(0, Value::Constant(0)).size(), 2u);
  EXPECT_EQ(relation.TuplesWith(1, Value::Constant(1)).size(), 2u);
  EXPECT_EQ(relation.TuplesWith(1, Value::Constant(9)).size(), 0u);
}

TEST(RelationTest, ZeroArity) {
  Relation relation(0);
  EXPECT_TRUE(relation.Insert({}));
  EXPECT_FALSE(relation.Insert({}));
  EXPECT_EQ(relation.size(), 1);
  EXPECT_TRUE(relation.Contains({}));
}

TEST(RelationDeathTest, ArityMismatchAborts) {
  Relation relation(2);
  EXPECT_DEATH(relation.Insert({Value::Constant(0)}), "arity");
}

TEST(DatabaseTest, GetOrCreateAndFind) {
  Database db;
  EXPECT_EQ(db.Find(0), nullptr);
  Relation& r = db.GetOrCreate(0, 2);
  EXPECT_EQ(r.arity(), 2);
  EXPECT_NE(db.Find(0), nullptr);
  EXPECT_EQ(db.TotalTuples(), 0);
}

TEST(DatabaseTest, InsertCreatesRelation) {
  Database db;
  EXPECT_TRUE(db.Insert(5, {Value::Constant(1)}));
  EXPECT_FALSE(db.Insert(5, {Value::Constant(1)}));
  EXPECT_EQ(db.TotalTuples(), 1);
  EXPECT_EQ(db.PredicatesPresent(), std::vector<PredicateId>{5});
}

TEST(DatabaseTest, FreshNullsAreDistinct) {
  Database db;
  Value n1 = db.FreshNull();
  Value n2 = db.FreshNull();
  EXPECT_NE(n1, n2);
  EXPECT_EQ(db.num_nulls(), 2);
}

TEST(DatabaseTest, ToStringSortedListing) {
  Vocabulary vocab;
  PredicateId r = vocab.MustPredicate("r", 1);
  Database db;
  db.Insert(r, {Value::Constant(vocab.InternConstant("b"))});
  db.Insert(r, {Value::Constant(vocab.InternConstant("a"))});
  EXPECT_EQ(db.ToString(vocab), "r(a)\nr(b)");
}

TEST(DatabaseTest, CopyIsIndependent) {
  Database db;
  db.Insert(0, {Value::Constant(1)});
  Database copy = db;
  copy.Insert(0, {Value::Constant(2)});
  EXPECT_EQ(db.TotalTuples(), 1);
  EXPECT_EQ(copy.TotalTuples(), 2);
}

}  // namespace
}  // namespace ontorew

#include "classes/agrd.h"
#include "classes/classifier.h"
#include "classes/domain_restricted.h"
#include "classes/linear.h"
#include "classes/sticky.h"
#include "classes/weakly_acyclic.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/paper_examples.h"
#include "workload/university.h"

namespace ontorew {
namespace {

TEST(LinearTest, SingleBodyAtom) {
  Vocabulary vocab;
  EXPECT_TRUE(IsLinear(MustTgd("r(X, Y) -> s(Y, Z).", &vocab)));
  EXPECT_FALSE(IsLinear(MustTgd("r(X, Y), w(Y) -> t(X).", &vocab)));
}

TEST(LinearTest, ProgramLevel) {
  Vocabulary vocab;
  EXPECT_TRUE(IsLinear(UniversityOntology(&vocab)));
  Vocabulary vocab2;
  EXPECT_FALSE(IsLinear(PaperExample1(&vocab2)));
}

TEST(MultilinearTest, EveryBodyAtomGuardsTheFrontier) {
  Vocabulary vocab;
  // Both atoms contain both distinguished variables.
  EXPECT_TRUE(
      IsMultilinear(MustTgd("r(X, Y), s(Y, X) -> t(X, Y).", &vocab)));
  // u(X) misses the distinguished Y.
  EXPECT_FALSE(
      IsMultilinear(MustTgd("r(X, Y), u(X) -> t(X, Y).", &vocab)));
  // Linear implies multilinear.
  EXPECT_TRUE(IsMultilinear(MustTgd("r(X, Y) -> t(X, Z).", &vocab)));
}

TEST(MultilinearTest, PaperExample3Reasoning) {
  // "nor multilinear, since u(y1) in R3 does not contain the variable y2".
  Vocabulary vocab;
  EXPECT_FALSE(IsMultilinear(PaperExample3(&vocab)));
}

TEST(StickyTest, MarkingInitialStep) {
  Vocabulary vocab;
  // Y does not occur in the head: marked.
  TgdProgram program = MustProgram("r(X, Y) -> s(X).", &vocab);
  StickyMarking marking = ComputeStickyMarking(program);
  VariableId y = vocab.InternVariable("Y");
  VariableId x = vocab.InternVariable("X");
  EXPECT_TRUE(marking.marked[0].count(y) > 0);
  EXPECT_FALSE(marking.marked[0].count(x) > 0);
}

TEST(StickyTest, MarkingPropagates) {
  Vocabulary vocab;
  // Rule 0: Z marked (missing from head) at position s[2].
  // Rule 1: W occurs in head at s[2] -> W becomes marked in rule 1's body.
  TgdProgram program = MustProgram(
      "s(X, Z) -> t(X).\n"
      "u(W, V) -> s(V, W).\n",
      &vocab);
  StickyMarking marking = ComputeStickyMarking(program);
  VariableId w = vocab.InternVariable("W");
  EXPECT_TRUE(marking.marked[1].count(w) > 0);
}

TEST(StickyTest, JoinOnMarkedVariableBreaksStickiness) {
  Vocabulary vocab;
  // Y is marked (missing from head) and occurs twice in the body.
  TgdProgram program = MustProgram("r(X, Y), s(Y) -> t(X).", &vocab);
  EXPECT_FALSE(IsSticky(program));
  // Join on an unmarked (propagated-to-head) variable is fine.
  Vocabulary vocab2;
  TgdProgram ok = MustProgram("r(X, Y), s(Y) -> t(X, Y).", &vocab2);
  EXPECT_TRUE(IsSticky(ok));
}

TEST(StickyTest, PaperExample3MarkingChain) {
  // The paper: y1 of R3 gets marked through R1 (y2 lost) and R2 (position
  // propagation), and occurs twice in t(y1,y1,y2) -> not sticky.
  Vocabulary vocab;
  EXPECT_FALSE(IsSticky(PaperExample3(&vocab)));
}

TEST(StickyJoinTest, RepetitionInsideOneAtomAllowed) {
  Vocabulary vocab;
  // Marked variable repeated inside a single atom: sticky-join tolerates
  // it, sticky does not. Construct: X marked via head loss in rule 0 and
  // repeated within one atom of rule 0's body.
  TgdProgram program = MustProgram("r(X, X) -> w(Y).", &vocab);
  EXPECT_FALSE(IsSticky(program));
  EXPECT_TRUE(IsStickyJoin(program));
}

TEST(StickyJoinTest, PaperExample3CrossAtomFails) {
  // "y1 appears in two different atoms of body(R3)" -> not sticky-join.
  Vocabulary vocab;
  EXPECT_FALSE(IsStickyJoin(PaperExample3(&vocab)));
}

TEST(AgrdTest, DependencyRequiresUnifiableHeadAndBody) {
  Vocabulary vocab;
  Tgd producer = MustTgd("a(X) -> b(X).", &vocab);
  Tgd consumer = MustTgd("b(X) -> c(X).", &vocab);
  Tgd unrelated = MustTgd("d(X) -> e(X).", &vocab);
  EXPECT_TRUE(RuleDependsOn(consumer, producer));
  EXPECT_FALSE(RuleDependsOn(producer, consumer));
  EXPECT_FALSE(RuleDependsOn(unrelated, producer));
}

TEST(AgrdTest, ExistentialBlocksDependencyOnConstants) {
  Vocabulary vocab;
  // a(X) -> b(X, Y) produces a null in position 2; b(X, c0) cannot match.
  Tgd producer = MustTgd("a(X) -> b(X, Y).", &vocab);
  Tgd consumer_const = MustTgd("b(X, c0) -> c(X).", &vocab);
  Tgd consumer_free = MustTgd("b(X, Z) -> c(X).", &vocab);
  EXPECT_FALSE(RuleDependsOn(consumer_const, producer));
  EXPECT_TRUE(RuleDependsOn(consumer_free, producer));
}

TEST(AgrdTest, ExistentialBlocksDependencyOnFrontierJoin) {
  Vocabulary vocab;
  // b(X, X) would force the null to equal the frontier value.
  Tgd producer = MustTgd("a(X) -> b(X, Y).", &vocab);
  Tgd consumer = MustTgd("b(X, X) -> c(X).", &vocab);
  EXPECT_FALSE(RuleDependsOn(consumer, producer));
}

TEST(AgrdTest, AcyclicAndCyclicPrograms) {
  Vocabulary vocab;
  EXPECT_TRUE(IsAgrd(MustProgram("a(X) -> b(X).\nb(X) -> c(X).\n", &vocab)));
  Vocabulary vocab2;
  EXPECT_FALSE(
      IsAgrd(MustProgram("a(X) -> b(X).\nb(X) -> a(X).\n", &vocab2)));
  Vocabulary vocab3;
  // Self-dependency.
  EXPECT_FALSE(IsAgrd(MustProgram("e(X, Y) -> e(Y, Z).\n", &vocab3)));
}

TEST(WeaklyAcyclicTest, ExistentialCycleDetected) {
  Vocabulary vocab;
  // The classic non-terminating pattern: person(X) -> parent(X, Y),
  // parent(X, Y) -> person(Y): special edge into person[1] and back.
  TgdProgram program = MustProgram(
      "person(X) -> parent(X, Y).\n"
      "parent(X, Y) -> person(Y).\n",
      &vocab);
  EXPECT_FALSE(IsWeaklyAcyclic(program));
}

TEST(WeaklyAcyclicTest, SafePatterns) {
  Vocabulary vocab;
  EXPECT_TRUE(IsWeaklyAcyclic(
      MustProgram("r(X, Y) -> s(X, Z).\ns(X, Z) -> t(X).\n", &vocab)));
  Vocabulary vocab2;
  // Recursion without existentials is weakly acyclic.
  EXPECT_TRUE(IsWeaklyAcyclic(
      MustProgram("e(X, Y), e(Y, Z) -> e(X, Z).\n", &vocab2)));
  Vocabulary vocab3;
  // University: faculty[1] <-> teaches[1] cycle is regular-only; the
  // special edges (into teaches[2], enrolled[2], advises[1]) all lead out
  // of the cycles, so the ontology is weakly acyclic (chase terminates).
  EXPECT_TRUE(IsWeaklyAcyclic(UniversityOntology(&vocab3)));
}

TEST(DomainRestrictedTest, AllOrNone) {
  Vocabulary vocab;
  // Head atom with ALL body variables.
  EXPECT_TRUE(
      IsDomainRestricted(MustTgd("r(X, Y) -> s(X, Y).", &vocab)));
  // Head atom with NONE of the body variables.
  EXPECT_TRUE(IsDomainRestricted(MustTgd("r(X, Y) -> w(Z).", &vocab)));
  // Head atom with some but not all.
  EXPECT_FALSE(IsDomainRestricted(MustTgd("r(X, Y) -> t(X).", &vocab)));
}

TEST(ClassifierTest, Example3Exclusions) {
  Vocabulary vocab;
  TgdProgram program = PaperExample3(&vocab);
  ClassificationReport report = Classify(program, vocab);
  EXPECT_FALSE(report.is_simple);
  EXPECT_FALSE(report.linear);
  EXPECT_FALSE(report.multilinear);
  EXPECT_FALSE(report.sticky);
  EXPECT_FALSE(report.sticky_join);
  EXPECT_FALSE(report.swr);
  EXPECT_EQ(report.wr, ClassificationReport::Wr::kYes);
}

TEST(ClassifierTest, Example1AllGood) {
  Vocabulary vocab;
  TgdProgram program = PaperExample1(&vocab);
  ClassificationReport report = Classify(program, vocab);
  EXPECT_TRUE(report.is_simple);
  EXPECT_TRUE(report.swr);
  EXPECT_EQ(report.wr, ClassificationReport::Wr::kYes);
}

TEST(ClassifierTest, TableRendersAllRows) {
  Vocabulary vocab;
  TgdProgram program = PaperExample2(&vocab);
  ClassificationReport report = Classify(program, vocab);
  EXPECT_EQ(report.wr, ClassificationReport::Wr::kNo);
  std::string table = report.ToTable();
  EXPECT_NE(table.find("Sticky"), std::string::npos);
  EXPECT_NE(table.find("WR"), std::string::npos);
  EXPECT_NE(table.find("cycle:"), std::string::npos);
}

}  // namespace
}  // namespace ontorew

// The central integration property (paper, Definition 1 / Theorem 1): for
// FO-rewritable programs, evaluating the rewriting over D equals the
// certain answers cert(q, P, D) computed independently via the chase.
// Random programs + random instances + random queries, fixed seeds.

#include <set>
#include <vector>

#include "base/rng.h"
#include "chase/chase.h"
#include "classes/weakly_acyclic.h"
#include "core/wr.h"
#include "core/swr.h"
#include "db/eval.h"
#include "gtest/gtest.h"
#include "logic/printer.h"
#include "rewriting/rewriter.h"
#include "test_util.h"
#include "workload/generators.h"

namespace ontorew {
namespace {

std::set<Tuple> AsSet(const std::vector<Tuple>& tuples) {
  return std::set<Tuple>(tuples.begin(), tuples.end());
}

// For weakly acyclic programs the chase terminates, so cert(q,P,D) is
// computable exactly: rewriting answers must match it whenever the
// rewriting itself terminates.
class RewritingVsChaseTest : public ::testing::TestWithParam<int> {};

TEST_P(RewritingVsChaseTest, ExactAgreementOnWeaklyAcyclicPrograms) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  int checked = 0;
  for (int attempt = 0; attempt < 40 && checked < 8; ++attempt) {
    Vocabulary vocab;
    RandomProgramOptions options;
    options.num_rules = rng.UniformIn(2, 5);
    options.num_predicates = rng.UniformIn(3, 5);
    options.max_arity = 2;
    options.max_body_atoms = 2;
    options.existential_prob = 0.4;
    TgdProgram program = RandomProgram(options, &rng, &vocab);
    if (!IsWeaklyAcyclic(program) || !program.IsSingleHead()) continue;

    Database db = RandomDatabase(program, 6, 4, &rng, &vocab);
    ConjunctiveQuery query =
        RandomCq(program, rng.UniformIn(1, 2), 1, &rng, &vocab);

    RewriterOptions rewriter_options;
    rewriter_options.max_cqs = 3000;
    StatusOr<RewriteResult> rewriting =
        RewriteCq(query, program, rewriter_options);
    if (!rewriting.ok()) continue;  // Not FO-rewritable for this query.

    StatusOr<std::vector<Tuple>> cert =
        CertainAnswersViaChase(UnionOfCqs(query), program, db);
    ASSERT_TRUE(cert.ok()) << cert.status();

    EvalOptions eval_options;
    eval_options.drop_tuples_with_nulls = true;
    std::vector<Tuple> via_rewriting =
        Evaluate(rewriting->ucq, db, eval_options);
    EXPECT_EQ(AsSet(via_rewriting), AsSet(*cert))
        << "program:\n"
        << ToString(program, vocab) << "\nquery: " << ToString(query, vocab);
    ++checked;
  }
  EXPECT_GT(checked, 0) << "generator produced no usable programs";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewritingVsChaseTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// On arbitrary simple SWR programs the chase may not terminate, but any
// truncated chase under-approximates the certain answers: every answer it
// yields must also be produced by the rewriting (soundness direction), and
// the rewriting must terminate (Theorem 1).
class SwrSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(SwrSoundnessTest, RewritingCoversTruncatedChase) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 15485863);
  int checked = 0;
  for (int attempt = 0; attempt < 60 && checked < 8; ++attempt) {
    Vocabulary vocab;
    RandomProgramOptions options;
    options.num_rules = rng.UniformIn(2, 4);
    options.num_predicates = rng.UniformIn(3, 5);
    options.max_arity = 3;
    options.max_body_atoms = 2;
    options.existential_prob = 0.3;
    TgdProgram program = RandomProgram(options, &rng, &vocab);
    if (!IsSwr(program)) continue;

    ConjunctiveQuery query =
        RandomCq(program, rng.UniformIn(1, 2), 1, &rng, &vocab);
    RewriterOptions rewriter_options;
    rewriter_options.max_cqs = 20000;
    StatusOr<RewriteResult> rewriting =
        RewriteCq(query, program, rewriter_options);
    // Theorem 1: SWR implies FO-rewritable; the saturation must finish.
    ASSERT_TRUE(rewriting.ok())
        << ToString(program, vocab) << "\n" << rewriting.status();

    Database db = RandomDatabase(program, 5, 3, &rng, &vocab);
    ChaseOptions chase_options;
    chase_options.max_rounds = 4;  // Deliberately truncated.
    chase_options.max_tuples = 20000;
    ChaseResult chase = RunChase(program, db, chase_options);

    EvalOptions eval_options;
    eval_options.drop_tuples_with_nulls = true;
    std::set<Tuple> via_rewriting =
        AsSet(Evaluate(rewriting->ucq, db, eval_options));
    std::set<Tuple> via_chase =
        AsSet(Evaluate(UnionOfCqs(query), chase.db, eval_options));
    for (const Tuple& tuple : via_chase) {
      EXPECT_TRUE(via_rewriting.count(tuple) > 0)
          << "chase-derived answer missing from rewriting\nprogram:\n"
          << ToString(program, vocab) << "\nquery: "
          << ToString(query, vocab);
    }
    // And when the truncated chase actually reached a fixpoint, the two
    // must agree exactly.
    if (chase.terminated) {
      EXPECT_EQ(via_rewriting, via_chase);
    }
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwrSoundnessTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// The paper's central conjecture (i) — every WR set is FO-rewritable —
// probed empirically: on random single-head programs that the P-node
// analysis accepts, the rewriting of random queries must terminate. A
// reconstruction of the P-node graph that were too permissive (accepting
// genuinely recursive sets) would fail here with ResourceExhausted.
class WrConjectureTest : public ::testing::TestWithParam<int> {};

TEST_P(WrConjectureTest, WrProgramsHaveTerminatingRewritings) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 86028157);
  int checked = 0;
  for (int attempt = 0; attempt < 60 && checked < 10; ++attempt) {
    Vocabulary vocab;
    RandomProgramOptions options;
    options.num_rules = rng.UniformIn(2, 5);
    options.num_predicates = rng.UniformIn(2, 4);
    options.max_arity = 3;
    options.max_body_atoms = 2;
    options.existential_prob = 0.35;
    options.repeat_prob = 0.2;   // Outside the simple fragment on purpose.
    options.constant_prob = 0.1;
    TgdProgram program = RandomProgram(options, &rng, &vocab);
    if (!program.IsSingleHead() || !IsWr(program)) continue;

    ConjunctiveQuery query =
        RandomCq(program, rng.UniformIn(1, 2), 1, &rng, &vocab);
    RewriterOptions rewriter_options;
    rewriter_options.max_cqs = 30000;
    StatusOr<RewriteResult> rewriting =
        RewriteCq(query, program, rewriter_options);
    EXPECT_TRUE(rewriting.ok())
        << "WR program with diverging rewriting — the reconstruction "
           "would be unsound:\n"
        << ToString(program, vocab) << "\nquery: "
        << ToString(query, vocab) << "\n" << rewriting.status();
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WrConjectureTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// The rewriting of a UCQ distributes over its disjuncts.
TEST(RewritingAlgebraTest, UnionDistribution) {
  Vocabulary vocab;
  TgdProgram program = MustProgram(
      "a(X) -> b(X).\n"
      "c(X) -> d(X).\n",
      &vocab);
  UnionOfCqs ucq;
  ucq.Add(MustQuery("q(X) :- b(X).", &vocab));
  ucq.Add(MustQuery("q(X) :- d(X).", &vocab));
  StatusOr<RewriteResult> whole = RewriteUcq(ucq, program);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole->ucq.size(), 4);  // {b, a, d, c}.
}

}  // namespace
}  // namespace ontorew

#include "rewriting/dag_rewriter.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "logic/canonical.h"
#include "logic/query.h"
#include "logic/vocabulary.h"
#include "rewriting/containment.h"
#include "rewriting/datalog.h"
#include "rewriting/rewriter.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/paper_examples.h"
#include "workload/university.h"

// The DAG rewriter's contract: UnfoldDatalog(RewriteToDatalog(q, P)),
// minimized, is CQ-for-CQ equivalent to the flat RewriteUcq union — on
// the DAG path and on every fallback. Minimal UCQs are unique up to
// disjunct isomorphism and CanonicalCqKey is an isomorphism invariant, so
// sorted key multisets compare the two exactly. (The unfolding needs the
// re-minimization: per-group minimization is not globally minimal, and
// the DAG path never runs cross-disjunct subsumption.)

namespace ontorew {
namespace {

std::vector<std::string> SortedKeys(const UnionOfCqs& ucq) {
  std::vector<std::string> keys;
  keys.reserve(ucq.disjuncts().size());
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    keys.push_back(CanonicalCqKey(cq));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Runs both paths and checks the equivalence property; returns the DAG
// result so callers can pin structural expectations on top.
DagRewriteResult CheckAgainstFlat(const ConjunctiveQuery& query,
                                  const TgdProgram& program) {
  StatusOr<DagRewriteResult> dag =
      RewriteToDatalog(UnionOfCqs(query), program);
  EXPECT_TRUE(dag.ok()) << dag.status();
  if (!dag.ok()) return DagRewriteResult{};
  EXPECT_TRUE(dag->program.Validate().ok())
      << dag->program.Validate().ToString();

  StatusOr<RewriteResult> flat = RewriteCq(query, program);
  EXPECT_TRUE(flat.ok()) << flat.status();
  StatusOr<UnionOfCqs> unfolded = UnfoldDatalog(dag->program);
  EXPECT_TRUE(unfolded.ok()) << unfolded.status();
  if (flat.ok() && unfolded.ok()) {
    EXPECT_EQ(SortedKeys(MinimizeUcq(*unfolded)), SortedKeys(flat->ucq));
  }
  return *std::move(dag);
}

ConjunctiveQuery UniversityQ2(Vocabulary* vocab) {
  return MustQuery("q(X0) :- person(X0), knows(X0, X1), person(X1).", vocab);
}

ConjunctiveQuery UniversityQ3(Vocabulary* vocab) {
  return MustQuery(
      "q(X0) :- person(X0), knows(X0, X1), person(X1), knows(X1, X2), "
      "person(X2).",
      vocab);
}

// knows/2 has no rules, so its reach set {knows} is disjoint from
// person's: every person atom is its own group, every knows atom too.
TEST(DagRewriterTest, UniversityQ2SharesThePersonGroup) {
  Vocabulary vocab;
  TgdProgram program = UniversityOntology(&vocab);
  const DagRewriteResult dag = CheckAgainstFlat(UniversityQ2(&vocab), program);
  EXPECT_FALSE(dag.fallback);
  EXPECT_EQ(dag.groups, 3);
  // The second person slot is served from the memo.
  EXPECT_EQ(dag.memo_hits, 1);
  // person gets the one aux predicate; the rule-less knows group has a
  // single-disjunct rewriting (itself) and is inlined.
  EXPECT_EQ(dag.program.cte_count(), 1);
  EXPECT_EQ(dag.program.output.size(), 1u);
}

// Three person slots, one saturation: q3's program is linear in the
// person rewriting while its flat union is cubic.
TEST(DagRewriterTest, UniversityQ3IsLinearInThePersonRewriting) {
  Vocabulary vocab;
  TgdProgram program = UniversityOntology(&vocab);
  const DagRewriteResult dag = CheckAgainstFlat(UniversityQ3(&vocab), program);
  EXPECT_FALSE(dag.fallback);
  // The two knows atoms share X1 (and trivially intersect in reach), so
  // they form one group: 3 person groups + the knows pair.
  EXPECT_EQ(dag.groups, 4);
  EXPECT_EQ(dag.memo_hits, 2);
  EXPECT_EQ(dag.program.cte_count(), 1);

  StatusOr<RewriteResult> flat = RewriteCq(UniversityQ3(&vocab), program);
  ASSERT_TRUE(flat.ok()) << flat.status();
  const int person_disjuncts = dag.program.aux[0].rules.size();
  EXPECT_GE(person_disjuncts, 2);
  EXPECT_EQ(dag.implied_disjuncts, static_cast<std::int64_t>(
                                       person_disjuncts) *
                                       person_disjuncts * person_disjuncts);
  EXPECT_EQ(dag.implied_disjuncts, flat->ucq.size());
  // The whole point: the program is an order of magnitude smaller than
  // the flat union it unfolds to.
  EXPECT_LT(dag.program.total_rules(), flat->ucq.size() / 10);
}

// k independent copies of the same subgoal: one aux, k call sites, d^k
// implied disjuncts.
TEST(DagRewriterTest, ProductQueryCostsKTimesD) {
  Vocabulary vocab;
  TgdProgram program =
      MustProgram("s1(X) -> p(X). s2(X) -> p(X).", &vocab);
  ConjunctiveQuery query = MustQuery("q(X, Y) :- p(X), p(Y).", &vocab);
  const DagRewriteResult dag = CheckAgainstFlat(query, program);
  EXPECT_FALSE(dag.fallback);
  EXPECT_EQ(dag.groups, 2);
  EXPECT_EQ(dag.memo_hits, 1);
  EXPECT_EQ(dag.program.cte_count(), 1);
  ASSERT_EQ(dag.program.aux.size(), 1u);
  EXPECT_EQ(dag.program.aux[0].rules.size(), 3u);  // p, s1, s2
  EXPECT_EQ(dag.implied_disjuncts, 9);
}

// The benchmark's blow-up shape via the workload generators. The small
// instance is cross-checked against the flat union; the bench-sized one
// implies 9^6 disjuncts — unfolding it is the exponential the DAG path
// avoids, so only its structure is pinned (the flat side of the property
// holds by induction from the small instance: the shape is uniform in k
// and d).
TEST(DagRewriterTest, ProductFamilyStaysLinearInKAndD) {
  {
    Vocabulary vocab;
    TgdProgram program = ProductFamily(3, &vocab);
    const DagRewriteResult dag =
        CheckAgainstFlat(ProductQuery(3, &vocab), program);
    EXPECT_FALSE(dag.fallback);
    // The r-links chain through shared variables (and share reach), so
    // they merge into one group: 3 p-atoms + the r-chain.
    EXPECT_EQ(dag.groups, 4);
    EXPECT_EQ(dag.memo_hits, 2);  // The two repeated p-groups.
    EXPECT_EQ(dag.implied_disjuncts, 4 * 4 * 4);
  }
  Vocabulary vocab;
  TgdProgram program = ProductFamily(8, &vocab);
  StatusOr<DagRewriteResult> dag =
      RewriteToDatalog(UnionOfCqs(ProductQuery(6, &vocab)), program);
  ASSERT_TRUE(dag.ok()) << dag.status();
  ASSERT_TRUE(dag->program.Validate().ok());
  EXPECT_FALSE(dag->fallback);
  EXPECT_EQ(dag->implied_disjuncts, 531441);  // (8+1)^6.
  // One memoized aux holding the 9 p-rewritings; everything else inline.
  EXPECT_EQ(dag->program.cte_count(), 1);
  ASSERT_EQ(dag->program.aux.size(), 1u);
  EXPECT_EQ(dag->program.aux[0].rules.size(), 9u);
  EXPECT_LE(dag->program.total_rules(), 10);
}

// A single-atom query never splits; the rewriter must take the reference
// path (where FactorUcq's cross-disjunct sharing is strictly better) and
// still produce an equivalent program.
TEST(DagRewriterTest, SingleGroupFallsBackToFlatPath) {
  Vocabulary vocab;
  TgdProgram program = PaperExample1(&vocab);
  ConjunctiveQuery query = MustQuery("q(X, Y) :- r(X, Y).", &vocab);
  const DagRewriteResult dag = CheckAgainstFlat(query, program);
  EXPECT_TRUE(dag.fallback);
  EXPECT_EQ(dag.groups, 0);
}

// Gate G2: PaperExample3's R1 has a repeated head variable
// (r(y1,y2) -> t(y3,y1,y1)), so a disjunct that reaches it must fall
// back even when it decomposes.
TEST(DagRewriterTest, NonSimpleHeadTripsG2) {
  Vocabulary vocab;
  TgdProgram program = PaperExample3(&vocab);
  // p/1 has no rules: {t(X,Y,Z)} and {p(W)} are separate groups, so only
  // the G2 gate stands between this query and the DAG path.
  vocab.MustPredicate("p", 1);
  ConjunctiveQuery query = MustQuery("q(X, W) :- t(X, Y, Z), p(W).", &vocab);
  const DagRewriteResult dag = CheckAgainstFlat(query, program);
  EXPECT_TRUE(dag.fallback);
}

// Gate G3: inside the {s(X,Z), s(Y,Z)} group, factorizing the two atoms
// identifies X with Y and drops Z to one occurrence, which u absorbs —
// the surviving disjunct u(X) answers (X, X), a non-identity interface no
// aux head can express. The whole query must fall back, and the fallback
// must still cover that disjunct.
TEST(DagRewriterTest, InterfaceMergingFactorizationTripsG3) {
  Vocabulary vocab;
  TgdProgram program = MustProgram("u(A) -> s(A, B). m(C) -> p(C).", &vocab);
  ConjunctiveQuery query =
      MustQuery("q(X, Y, W) :- s(X, Z), s(Y, Z), p(W).", &vocab);
  const DagRewriteResult dag = CheckAgainstFlat(query, program);
  EXPECT_TRUE(dag.fallback);
}

// Saturation errors surface unchanged through the per-group path.
TEST(DagRewriterTest, GroupSaturationErrorsPropagate) {
  Vocabulary vocab;
  TgdProgram program = UniversityOntology(&vocab);
  DagRewriteOptions options;
  options.rewriter.max_cqs = 1;
  StatusOr<DagRewriteResult> dag =
      RewriteToDatalog(UnionOfCqs(UniversityQ3(&vocab)), program, options);
  EXPECT_FALSE(dag.ok());
  EXPECT_EQ(dag.status().code(), StatusCode::kResourceExhausted)
      << dag.status();
}

// A multi-disjunct input mixes per-disjunct plans: the splitting disjunct
// takes the DAG path while the single-group one is rewritten whole, and
// the union still matches flat.
TEST(DagRewriterTest, MixedDisjunctPlansCompose) {
  Vocabulary vocab;
  TgdProgram program = UniversityOntology(&vocab);
  ConjunctiveQuery q2 = UniversityQ2(&vocab);
  ConjunctiveQuery single = MustQuery("q(X0) :- person(X0).", &vocab);
  UnionOfCqs query;
  query.Add(q2);
  query.Add(single);

  StatusOr<DagRewriteResult> dag = RewriteToDatalog(query, program);
  ASSERT_TRUE(dag.ok()) << dag.status();
  EXPECT_FALSE(dag->fallback);
  EXPECT_EQ(dag->groups, 4);  // 3 from q2 + 1 from the single disjunct.
  // q2's two person slots hit the memo; the whole-disjunct rewriting of
  // `single` is keyed separately (different answer freezing) and misses.
  EXPECT_EQ(dag->memo_hits, 1);

  StatusOr<RewriteResult> flat = RewriteUcq(query, program);
  ASSERT_TRUE(flat.ok()) << flat.status();
  StatusOr<UnionOfCqs> unfolded = UnfoldDatalog(dag->program);
  ASSERT_TRUE(unfolded.ok()) << unfolded.status();
  EXPECT_EQ(SortedKeys(MinimizeUcq(*unfolded)), SortedKeys(flat->ucq));
}

}  // namespace
}  // namespace ontorew

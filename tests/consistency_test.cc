#include <string>
#include <vector>

#include "db/facts_io.h"
#include "gtest/gtest.h"
#include "obda/consistency.h"
#include "rewriting/rewriter.h"
#include "test_util.h"

namespace ontorew {
namespace {

TEST(DenialParseTest, BasicAndErrors) {
  Vocabulary vocab;
  StatusOr<std::vector<DenialConstraint>> denials = ParseDenials(
      "# disjointness\n"
      "!- professor(X), student(X).\n"
      "!- teaches(X, Y), enrolled(X, Y).\n",
      &vocab);
  ASSERT_TRUE(denials.ok()) << denials.status();
  EXPECT_EQ(denials->size(), 2u);
  EXPECT_EQ((*denials)[0].body.size(), 2u);
  EXPECT_FALSE(ParseDenials("professor(X).\n", &vocab).ok());
}

TEST(DenialParseTest, CommentMarkersInsideQuotedConstantsAreData) {
  // Regression: like ParseFacts, denial parsing used to cut the line at
  // a '#'/'%' inside a quoted constant, leaving an unterminated string.
  Vocabulary vocab;
  StatusOr<std::vector<DenialConstraint>> denials = ParseDenials(
      "!- tag(X, \"#urgent\"), closed(X).  # open and urgent conflict\n"
      "!- grade(X, \"100%\"), failed(X).\n",
      &vocab);
  ASSERT_TRUE(denials.ok()) << denials.status();
  ASSERT_EQ(denials->size(), 2u);
  EXPECT_EQ((*denials)[0].body.size(), 2u);
  EXPECT_EQ((*denials)[1].body.size(), 2u);
}

TEST(DenialParseTest, ErrorsReportOriginalLineNumbers) {
  Vocabulary vocab;
  // A syntax error inside the body: reported against the source line,
  // not against the internally rewritten "_denial() :- ..." text.
  StatusOr<std::vector<DenialConstraint>> bad = ParseDenials(
      "!- a(X).\n"
      "\n"
      "!- b(X,.\n",
      &vocab);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("denials line 3"), std::string::npos)
      << bad.status();

  // A line that is not a denial at all names its line too.
  StatusOr<std::vector<DenialConstraint>> not_denial = ParseDenials(
      "!- a(X).\n"
      "b(X).\n",
      &vocab);
  ASSERT_FALSE(not_denial.ok());
  EXPECT_NE(not_denial.status().message().find("denials line 2"),
            std::string::npos)
      << not_denial.status();
}

TEST(ConsistencyTest, DirectViolation) {
  Vocabulary vocab;
  TgdProgram program = MustProgram("a(X) -> b(X).", &vocab);
  StatusOr<std::vector<DenialConstraint>> denials =
      ParseDenials("!- b(X), c(X).\n", &vocab);
  ASSERT_TRUE(denials.ok());
  StatusOr<Database> db = ParseFacts("b(k).\nc(k).\n", &vocab);
  ASSERT_TRUE(db.ok());
  StatusOr<ConsistencyReport> report =
      CheckConsistency(program, *denials, *db, vocab);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->consistent);
  ASSERT_EQ(report->witnesses.size(), 1u);
  EXPECT_NE(report->witnesses[0].find("b(k)"), std::string::npos);
}

TEST(ConsistencyTest, ViolationThroughTheOntology) {
  // The violation only appears after reasoning: a(k) implies b(k).
  Vocabulary vocab;
  TgdProgram program = MustProgram("a(X) -> b(X).", &vocab);
  StatusOr<std::vector<DenialConstraint>> denials =
      ParseDenials("!- b(X), c(X).\n", &vocab);
  ASSERT_TRUE(denials.ok());
  StatusOr<Database> db = ParseFacts("a(k).\nc(k).\n", &vocab);
  ASSERT_TRUE(db.ok());
  StatusOr<ConsistencyReport> report =
      CheckConsistency(program, *denials, *db, vocab);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->consistent);
  EXPECT_EQ(report->violated, std::vector<int>{0});
  // The witness names the *raw* facts, not the derived ones.
  EXPECT_NE(report->witnesses[0].find("a(k)"), std::string::npos)
      << report->witnesses[0];
}

TEST(ConsistencyTest, ConsistentInstance) {
  Vocabulary vocab;
  TgdProgram program = MustProgram("a(X) -> b(X).", &vocab);
  StatusOr<std::vector<DenialConstraint>> denials =
      ParseDenials("!- b(X), c(X).\n", &vocab);
  ASSERT_TRUE(denials.ok());
  StatusOr<Database> db = ParseFacts("a(k).\nc(m).\n", &vocab);
  ASSERT_TRUE(db.ok());
  StatusOr<ConsistencyReport> report =
      CheckConsistency(program, *denials, *db, vocab);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent);
  EXPECT_TRUE(report->violated.empty());
}

TEST(ConsistencyTest, MultipleDenialsReportedIndividually) {
  Vocabulary vocab;
  TgdProgram program = MustProgram("a(X) -> b(X).", &vocab);
  StatusOr<std::vector<DenialConstraint>> denials = ParseDenials(
      "!- b(X), c(X).\n"
      "!- d(X), e(X).\n",
      &vocab);
  ASSERT_TRUE(denials.ok());
  StatusOr<Database> db = ParseFacts("d(k).\ne(k).\n", &vocab);
  ASSERT_TRUE(db.ok());
  StatusOr<ConsistencyReport> report =
      CheckConsistency(program, *denials, *db, vocab);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->consistent);
  EXPECT_EQ(report->violated, std::vector<int>{1});
}

TEST(DerivationTest, ChainsReadable) {
  Vocabulary vocab;
  TgdProgram program = MustProgram(
      "a(X) -> b(X).\n"
      "b(X) -> c(X).\n",
      &vocab);
  StatusOr<RewriteResult> result =
      RewriteCq(MustQuery("q(X) :- c(X).", &vocab), program);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->saturated.size(), 3u);  // c, b, a.
  EXPECT_EQ(DescribeDerivation(*result, 0), "q0");
  EXPECT_EQ(DescribeDerivation(*result, 1), "q0 =R2=> q1");
  EXPECT_EQ(DescribeDerivation(*result, 2), "q0 =R2=> q1 =R1=> q2");
}

}  // namespace
}  // namespace ontorew

// Unit tests for the cancellation/fault-injection base layer: Deadline,
// CancelToken, CancelScope (base/deadline.*) and the fault-point registry
// (base/fault_point.*), plus the new status codes and metric gauges they
// rely on.

#include <chrono>
#include <memory>
#include <thread>

#include "base/deadline.h"
#include "base/fault_point.h"
#include "base/metrics.h"
#include "base/status.h"
#include "gtest/gtest.h"

namespace ontorew {
namespace {

using std::chrono::milliseconds;

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline infinite = Deadline::Infinite();
  EXPECT_TRUE(infinite.is_infinite());
  EXPECT_FALSE(infinite.expired());
  EXPECT_EQ(infinite.remaining(), Deadline::Clock::duration::max());
  // Default construction is infinite too.
  EXPECT_TRUE(Deadline().is_infinite());
}

TEST(DeadlineTest, PastDeadlineIsExpired) {
  Deadline past = Deadline::After(milliseconds(-1));
  EXPECT_FALSE(past.is_infinite());
  EXPECT_TRUE(past.expired());
  EXPECT_EQ(past.remaining(), Deadline::Clock::duration::zero());
}

TEST(DeadlineTest, FutureDeadlineHasRemainingBudget) {
  Deadline future = Deadline::AfterMillis(60'000);
  EXPECT_FALSE(future.expired());
  EXPECT_GT(future.remaining(), milliseconds(59'000));
}

TEST(DeadlineTest, EarlierPicksTheTighterDeadline) {
  Deadline loose = Deadline::AfterMillis(60'000);
  Deadline tight = Deadline::AfterMillis(1'000);
  EXPECT_EQ(Deadline::Earlier(loose, tight).time(), tight.time());
  EXPECT_EQ(Deadline::Earlier(tight, loose).time(), tight.time());
  // Infinite is the identity on either side.
  EXPECT_EQ(Deadline::Earlier(Deadline::Infinite(), tight).time(),
            tight.time());
  EXPECT_EQ(Deadline::Earlier(tight, Deadline::Infinite()).time(),
            tight.time());
  EXPECT_TRUE(
      Deadline::Earlier(Deadline::Infinite(), Deadline::Infinite())
          .is_infinite());
}

TEST(CancelTokenTest, CancelIsStickyAndVisibleAcrossThreads) {
  auto token = std::make_shared<CancelToken>();
  EXPECT_FALSE(token->cancelled());
  std::thread canceller([token] { token->Cancel(); });
  canceller.join();
  EXPECT_TRUE(token->cancelled());
}

TEST(CancelTokenTest, ChildReportsParentCancellation) {
  auto parent = std::make_shared<CancelToken>();
  CancelToken child(parent);
  EXPECT_FALSE(child.cancelled());
  parent->Cancel();
  EXPECT_TRUE(child.cancelled());
}

TEST(CancelTokenTest, ChildCancellationDoesNotPropagateUp) {
  auto parent = std::make_shared<CancelToken>();
  auto child = std::make_shared<CancelToken>(parent);
  child->Cancel();
  EXPECT_TRUE(child->cancelled());
  EXPECT_FALSE(parent->cancelled());
}

TEST(CancelScopeTest, InertScopeAlwaysPasses) {
  CancelScope scope;
  EXPECT_FALSE(scope.active());
  EXPECT_TRUE(scope.Check("anywhere").ok());
}

TEST(CancelScopeTest, ExpiredDeadlineYieldsDeadlineExceeded) {
  CancelScope scope(Deadline::After(milliseconds(-1)));
  EXPECT_TRUE(scope.active());
  Status status = scope.Check("test site");
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("test site"), std::string::npos);
}

TEST(CancelScopeTest, CancelledTokenYieldsCancelled) {
  auto token = std::make_shared<CancelToken>();
  CancelScope scope(Deadline::Infinite(), token);
  EXPECT_TRUE(scope.active());
  EXPECT_TRUE(scope.Check("site").ok());
  token->Cancel();
  EXPECT_EQ(scope.Check("site").code(), StatusCode::kCancelled);
}

TEST(CancelScopeTest, CancellationWinsOverExpiredDeadline) {
  // Both tripped: report Cancelled (the caller's explicit intent).
  auto token = std::make_shared<CancelToken>();
  token->Cancel();
  CancelScope scope(Deadline::After(milliseconds(-1)), token);
  EXPECT_EQ(scope.Check("site").code(), StatusCode::kCancelled);
}

TEST(CancelScopeTest, WithTokenShortCircuitsWithoutTouchingCaller) {
  auto caller = std::make_shared<CancelToken>();
  CancelScope outer(Deadline::Infinite(), caller);
  auto pool = std::make_shared<CancelToken>(caller);
  CancelScope inner = outer.WithToken(pool);
  pool->Cancel();
  EXPECT_EQ(inner.Check("worker").code(), StatusCode::kCancelled);
  EXPECT_TRUE(outer.Check("caller").ok());
}

TEST(StatusTest, NewCodesHaveNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kDeadlineExceeded),
            "DeadlineExceeded");
  EXPECT_EQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
  EXPECT_EQ(DeadlineExceededError("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(CancelledError("x").code(), StatusCode::kCancelled);
}

// --- Fault points -----------------------------------------------------------

class FaultPointTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::Global().Reset(); }
};

TEST_F(FaultPointTest, UnarmedCheckIsOkAndRegistryUnarmed) {
  FaultRegistry::Global().Reset();
  EXPECT_FALSE(FaultRegistry::Global().armed());
  EXPECT_TRUE(CheckFaultPoint("nowhere").ok());
  EXPECT_EQ(FaultRegistry::Global().trips("nowhere"), 0);
}

TEST_F(FaultPointTest, ArmedPointTripsWithInjectedStatus) {
  FaultPointConfig config;
  config.code = StatusCode::kInternal;
  FaultRegistry::Global().Arm("test.point", config);
  EXPECT_TRUE(FaultRegistry::Global().armed());
  Status status = CheckFaultPoint("test.point");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("test.point"), std::string::npos);
  EXPECT_EQ(FaultRegistry::Global().hits("test.point"), 1);
  EXPECT_EQ(FaultRegistry::Global().trips("test.point"), 1);
  // Other points are unaffected.
  EXPECT_TRUE(CheckFaultPoint("other.point").ok());
}

TEST_F(FaultPointTest, AfterCountDelaysTheTrip) {
  FaultPointConfig config;
  config.after = 2;
  FaultRegistry::Global().Arm("test.after", config);
  EXPECT_TRUE(CheckFaultPoint("test.after").ok());   // hit 1
  EXPECT_TRUE(CheckFaultPoint("test.after").ok());   // hit 2
  EXPECT_FALSE(CheckFaultPoint("test.after").ok());  // hit 3 trips
  EXPECT_EQ(FaultRegistry::Global().hits("test.after"), 3);
  EXPECT_EQ(FaultRegistry::Global().trips("test.after"), 1);
}

TEST_F(FaultPointTest, ProbabilityIsDeterministicPerSeed) {
  FaultPointConfig config;
  config.probability = 0.5;
  config.seed = 42;
  FaultRegistry::Global().Arm("test.prob", config);
  int first_trips = 0;
  for (int i = 0; i < 100; ++i) {
    if (!CheckFaultPoint("test.prob").ok()) ++first_trips;
  }
  // Roughly half, and exactly reproducible on re-arm with the same seed.
  EXPECT_GT(first_trips, 20);
  EXPECT_LT(first_trips, 80);
  FaultRegistry::Global().Arm("test.prob", config);  // Re-arm resets RNG.
  int second_trips = 0;
  for (int i = 0; i < 100; ++i) {
    if (!CheckFaultPoint("test.prob").ok()) ++second_trips;
  }
  // Hit counts differ (they accumulate) but the trip pattern repeats.
  EXPECT_EQ(first_trips, second_trips);
}

TEST_F(FaultPointTest, DisarmStopsTrippingButKeepsCounting) {
  FaultRegistry::Global().Arm("test.disarm");
  EXPECT_FALSE(CheckFaultPoint("test.disarm").ok());
  FaultRegistry::Global().Disarm("test.disarm");
  EXPECT_FALSE(FaultRegistry::Global().armed());
  EXPECT_TRUE(CheckFaultPoint("test.disarm").ok());
  EXPECT_EQ(FaultRegistry::Global().trips("test.disarm"), 1);
}

TEST_F(FaultPointTest, HandlerCanSuppressOrReplaceTheFault) {
  FaultPointConfig suppress;
  suppress.handler = [](std::string_view) { return Status::Ok(); };
  FaultRegistry::Global().Arm("test.handler", suppress);
  EXPECT_TRUE(CheckFaultPoint("test.handler").ok());
  EXPECT_EQ(FaultRegistry::Global().trips("test.handler"), 1);

  FaultPointConfig replace;
  replace.handler = [](std::string_view) {
    return ResourceExhaustedError("replaced");
  };
  FaultRegistry::Global().Arm("test.handler", replace);
  Status status = CheckFaultPoint("test.handler");
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(status.message(), "replaced");
}

TEST_F(FaultPointTest, ScopedFaultDisarmsOnExit) {
  {
    ScopedFault fault("test.scoped");
    EXPECT_FALSE(CheckFaultPoint("test.scoped").ok());
  }
  EXPECT_TRUE(CheckFaultPoint("test.scoped").ok());
}

TEST_F(FaultPointTest, ResetAllDisarmsEveryPointAndClearsCounts) {
  // A chaos harness arms many points; one ResetAll must quiesce them
  // ALL — per-point Disarm bookkeeping is exactly what harnesses get
  // wrong.
  for (const char* point : {"test.a", "test.b", "test.c"}) {
    FaultRegistry::Global().Arm(point, {.probability = 1.0});
    EXPECT_FALSE(CheckFaultPoint(point).ok());
  }
  EXPECT_TRUE(FaultRegistry::Global().armed());
  FaultRegistry::Global().ResetAll();
  EXPECT_FALSE(FaultRegistry::Global().armed());
  for (const char* point : {"test.a", "test.b", "test.c"}) {
    EXPECT_TRUE(CheckFaultPoint(point).ok());
    EXPECT_EQ(FaultRegistry::Global().trips(point), 0);
  }
}

TEST_F(FaultPointTest, FaultQuiesceBracketsAScopeCleanOnBothEnds) {
  // Leak a fault on purpose...
  FaultRegistry::Global().Arm("test.leaked", {.probability = 1.0});
  {
    // ...the guard's CONSTRUCTION already quiesces it (the scope starts
    // clean even when the previous test failed mid-chaos)...
    FaultQuiesce quiesce;
    EXPECT_FALSE(FaultRegistry::Global().armed());
    EXPECT_TRUE(CheckFaultPoint("test.leaked").ok());
    // ...and anything armed inside dies with the scope.
    FaultRegistry::Global().Arm("test.inner", {.probability = 1.0});
  }
  EXPECT_FALSE(FaultRegistry::Global().armed());
  EXPECT_TRUE(CheckFaultPoint("test.inner").ok());
}

// --- Metric gauges ----------------------------------------------------------

TEST(MetricsGaugeTest, SetAdjustSnapshotAndReset) {
  MetricsRegistry metrics;
  metrics.SetGauge("inflight", 3);
  metrics.AdjustGauge("inflight", 2);
  metrics.AdjustGauge("inflight", -4);
  MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.Gauge("inflight"), 1);
  EXPECT_EQ(snapshot.Gauge("absent"), 0);
  EXPECT_NE(snapshot.ToString().find("inflight = 1"), std::string::npos);
  metrics.Reset();
  EXPECT_EQ(metrics.Snapshot().Gauge("inflight"), 0);
}

}  // namespace
}  // namespace ontorew

#include <string>
#include <vector>

#include "db/eval.h"
#include "db/facts_io.h"
#include "gtest/gtest.h"
#include "logic/printer.h"
#include "obda/mapping.h"
#include "rewriting/rewriter.h"
#include "test_util.h"

namespace ontorew {
namespace {

TEST(MappingParseTest, BasicAssertions) {
  Vocabulary vocab;
  StatusOr<MappingSet> mappings = ParseMappings(
      "professor(X) :- emp(X, D), dept(D, research).\n"
      "teaches(X, C) :- assignment(X, C).\n",
      &vocab);
  ASSERT_TRUE(mappings.ok()) << mappings.status();
  EXPECT_EQ(mappings->assertions().size(), 2u);
  EXPECT_TRUE(mappings->HasDefinition(vocab.FindPredicate("professor")));
  EXPECT_FALSE(mappings->HasDefinition(vocab.FindPredicate("emp")));
}

TEST(MappingParseTest, RejectsTgdsAndUnsafeHeads) {
  Vocabulary vocab;
  EXPECT_FALSE(ParseMappings("emp(X, D) -> professor(X).\n", &vocab).ok());
  // Y does not occur in the body: unsafe.
  Vocabulary vocab2;
  EXPECT_FALSE(
      ParseMappings("teaches(X, Y) :- emp(X, D).\n", &vocab2).ok());
}

TEST(MappingParseTest, ArityConsistencyWithOntology) {
  Vocabulary vocab;
  vocab.MustPredicate("professor", 1);
  StatusOr<MappingSet> bad =
      ParseMappings("professor(X, Y) :- emp(X, Y).\n", &vocab);
  EXPECT_FALSE(bad.ok());
}

TEST(UnfoldTest, SingleDefinition) {
  Vocabulary vocab;
  StatusOr<MappingSet> mappings = ParseMappings(
      "professor(X) :- emp(X, D), dept(D, research).\n", &vocab);
  ASSERT_TRUE(mappings.ok());
  UnionOfCqs query(MustQuery("q(X) :- professor(X).", &vocab));
  StatusOr<UnionOfCqs> unfolded = UnfoldUcq(query, *mappings, &vocab);
  ASSERT_TRUE(unfolded.ok()) << unfolded.status();
  ASSERT_EQ(unfolded->size(), 1);
  EXPECT_EQ(unfolded->disjuncts()[0].body().size(), 2u);
}

TEST(UnfoldTest, MultipleDefinitionsMultiplyDisjuncts) {
  Vocabulary vocab;
  StatusOr<MappingSet> mappings = ParseMappings(
      "person(X) :- staff(X).\n"
      "person(X) :- students(X, Y).\n",
      &vocab);
  ASSERT_TRUE(mappings.ok());
  UnionOfCqs query(MustQuery("q(X) :- person(X).", &vocab));
  StatusOr<UnionOfCqs> unfolded = UnfoldUcq(query, *mappings, &vocab);
  ASSERT_TRUE(unfolded.ok());
  EXPECT_EQ(unfolded->size(), 2);
  // Two mapped atoms in one CQ: cartesian product of choices.
  UnionOfCqs pair_query(
      MustQuery("q(X, Y) :- person(X), person(Y).", &vocab));
  StatusOr<UnionOfCqs> pair = UnfoldUcq(pair_query, *mappings, &vocab);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->size(), 4);
}

TEST(UnfoldTest, JoinVariablesThreadThrough) {
  Vocabulary vocab;
  StatusOr<MappingSet> mappings = ParseMappings(
      "teaches(X, C) :- assignment(X, C, Sem).\n"
      "course(C) :- catalog(C).\n",
      &vocab);
  ASSERT_TRUE(mappings.ok());
  UnionOfCqs query(
      MustQuery("q(X) :- teaches(X, C), course(C).", &vocab));
  StatusOr<UnionOfCqs> unfolded = UnfoldUcq(query, *mappings, &vocab);
  ASSERT_TRUE(unfolded.ok()) << unfolded.status();
  ASSERT_EQ(unfolded->size(), 1);
  const ConjunctiveQuery& cq = unfolded->disjuncts()[0];
  // The join on C must survive: assignment's course column equals
  // catalog's column.
  ASSERT_EQ(cq.body().size(), 2u);
  Term join_a = cq.body()[0].predicate() == vocab.FindPredicate("assignment")
                    ? cq.body()[0].term(1)
                    : cq.body()[1].term(1);
  Term join_b = cq.body()[0].predicate() == vocab.FindPredicate("catalog")
                    ? cq.body()[0].term(0)
                    : cq.body()[1].term(0);
  EXPECT_EQ(join_a, join_b) << ToString(cq, vocab);
}

TEST(UnfoldTest, ConstantsInMappingHeadsFilter) {
  Vocabulary vocab;
  StatusOr<MappingSet> mappings = ParseMappings(
      "level(X, bachelor) :- ugrad(X).\n"
      "level(X, master) :- grad(X).\n",
      &vocab);
  ASSERT_TRUE(mappings.ok()) << mappings.status();
  // Asking for masters only: the bachelor definition cannot unify.
  UnionOfCqs query(MustQuery("q(X) :- level(X, master).", &vocab));
  StatusOr<UnionOfCqs> unfolded = UnfoldUcq(query, *mappings, &vocab);
  ASSERT_TRUE(unfolded.ok()) << unfolded.status();
  ASSERT_EQ(unfolded->size(), 1);
  EXPECT_EQ(vocab.PredicateName(unfolded->disjuncts()[0].body()[0]
                                    .predicate()),
            "grad");
}

TEST(UnfoldTest, UnmappedAtomStrictVsLenient) {
  Vocabulary vocab;
  StatusOr<MappingSet> mappings =
      ParseMappings("person(X) :- staff(X).\n", &vocab);
  ASSERT_TRUE(mappings.ok());
  UnionOfCqs query(
      MustQuery("q(X) :- person(X), vip(X).", &vocab));
  // Strict: vip has no definition -> no source query at all -> error.
  EXPECT_FALSE(UnfoldUcq(query, *mappings, &vocab).ok());
  // Lenient: keep vip as a (materialized) source atom.
  UnfoldOptions lenient;
  lenient.keep_unmapped_atoms = true;
  StatusOr<UnionOfCqs> unfolded =
      UnfoldUcq(query, *mappings, &vocab, lenient);
  ASSERT_TRUE(unfolded.ok());
  EXPECT_EQ(unfolded->size(), 1);
  EXPECT_EQ(unfolded->disjuncts()[0].body().size(), 2u);
}

// Full virtual-OBDA pipeline: ontology rewriting, then mapping unfolding,
// then evaluation over the raw source database only.
TEST(UnfoldTest, EndToEndVirtualObda) {
  Vocabulary vocab;
  TgdProgram ontology = MustProgram(
      "professor(X) -> faculty(X).\n"
      "lecturer(X) -> faculty(X).\n",
      &vocab);
  StatusOr<MappingSet> mappings = ParseMappings(
      "professor(X) :- emp(X, rank1).\n"
      "lecturer(X) :- emp(X, rank2).\n",
      &vocab);
  ASSERT_TRUE(mappings.ok()) << mappings.status();
  StatusOr<Database> source = ParseFacts(
      "emp(ada, rank1).\n"
      "emp(bob, rank2).\n"
      "emp(eve, rank3).\n",
      &vocab);
  ASSERT_TRUE(source.ok());

  ConjunctiveQuery query = MustQuery("q(X) :- faculty(X).", &vocab);
  StatusOr<RewriteResult> rewriting = RewriteCq(query, ontology);
  ASSERT_TRUE(rewriting.ok());
  StatusOr<UnionOfCqs> unfolded =
      UnfoldUcq(rewriting->ucq, *mappings, &vocab);
  ASSERT_TRUE(unfolded.ok()) << unfolded.status();
  std::vector<Tuple> answers = Evaluate(*unfolded, *source);
  ASSERT_EQ(answers.size(), 2u);  // ada and bob, not eve.
}

}  // namespace
}  // namespace ontorew

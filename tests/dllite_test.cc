#include <vector>

#include "chase/chase.h"
#include "classes/classifier.h"
#include "classes/linear.h"
#include "core/swr.h"
#include "core/wr.h"
#include "db/eval.h"
#include "dl/dllite.h"
#include "gtest/gtest.h"
#include "logic/printer.h"
#include "rewriting/rewriter.h"
#include "test_util.h"

namespace ontorew {
namespace {

TEST(DlLiteParseTest, AxiomKinds) {
  StatusOr<std::vector<DlAxiom>> axioms = ParseDlLiteAxioms(
      "# a comment\n"
      "Professor [= Faculty\n"
      "Faculty [= exists teaches\n"
      "exists teaches- [= Course\n"
      "mentors [= advises-\n"
      "\n");
  ASSERT_TRUE(axioms.ok()) << axioms.status();
  ASSERT_EQ(axioms->size(), 4u);
  EXPECT_FALSE((*axioms)[0].is_role_inclusion);
  EXPECT_EQ((*axioms)[1].rhs_concept.kind,
            DlBasicConcept::Kind::kExistsRole);
  EXPECT_EQ((*axioms)[2].lhs_concept.kind,
            DlBasicConcept::Kind::kExistsInverseRole);
  EXPECT_TRUE((*axioms)[3].is_role_inclusion);
  EXPECT_TRUE((*axioms)[3].rhs_inverse);
}

TEST(DlLiteParseTest, Errors) {
  EXPECT_FALSE(ParseDlLiteAxioms("Professor Faculty\n").ok());
  EXPECT_FALSE(ParseDlLiteAxioms("[= Faculty\n").ok());
  EXPECT_FALSE(ParseDlLiteAxioms("exists [= Faculty\n").ok());
  // "A- [= B" is a legal inverse-role inclusion; a dangling
  // inverse marker against an exists-side is not.
  EXPECT_TRUE(ParseDlLiteAxioms("A- [= B\n").ok());
  EXPECT_FALSE(ParseDlLiteAxioms("A- [= exists r\n").ok());
  EXPECT_FALSE(ParseDlLiteAxioms("A B [= C\n").ok());
}

TEST(DlLiteTranslateTest, ConceptInclusion) {
  Vocabulary vocab;
  StatusOr<TgdProgram> program = ParseDlLite("A [= B\n", &vocab);
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_EQ(program->size(), 1);
  EXPECT_EQ(ToString(program->tgd(0), vocab), "A(X) -> B(X).");
}

TEST(DlLiteTranslateTest, ExistentialAndInverse) {
  Vocabulary vocab;
  StatusOr<TgdProgram> program = ParseDlLite(
      "A [= exists r\n"
      "exists r- [= B\n"
      "A [= exists r-\n",
      &vocab);
  ASSERT_TRUE(program.ok()) << program.status();
  ASSERT_EQ(program->size(), 3);
  EXPECT_EQ(ToString(program->tgd(0), vocab), "A(X) -> r(X, Z).");
  EXPECT_EQ(ToString(program->tgd(1), vocab), "r(Y, X) -> B(X).");
  EXPECT_EQ(ToString(program->tgd(2), vocab), "A(X) -> r(Z, X).");
}

TEST(DlLiteTranslateTest, RoleInclusions) {
  Vocabulary vocab;
  StatusOr<TgdProgram> program = ParseDlLite(
      "mentors [= advises-\n"
      "advises- [= knows\n",
      &vocab);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(ToString(program->tgd(0), vocab), "mentors(X, Y) -> advises(Y, X).");
  EXPECT_EQ(ToString(program->tgd(1), vocab), "advises(Y, X) -> knows(X, Y).");
}

TEST(DlLiteTranslateTest, ArityClashDetected) {
  Vocabulary vocab;
  // 'teaches' used both as a concept and as a role.
  StatusOr<TgdProgram> program = ParseDlLite(
      "teaches [= Faculty\n"
      "Faculty [= exists teaches\n",
      &vocab);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kInvalidArgument);
}

// The paper's point made executable: every DL-Lite_R TBox translates into
// simple linear TGDs — SWR, hence FO-rewritable, hence WR.
TEST(DlLiteTest, TranslationsAreAlwaysSwrAndWr) {
  Vocabulary vocab;
  StatusOr<TgdProgram> program = ParseDlLite(
      "Professor [= Faculty\n"
      "Faculty [= exists teaches\n"
      "exists teaches [= Faculty\n"
      "exists teaches- [= Course\n"
      "Course [= exists taughtBy\n"
      "taughtBy [= teaches-\n"
      "PhD [= Student\n"
      "Student [= exists enrolled\n"
      "exists enrolled- [= Course\n",
      &vocab);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_TRUE(program->IsSimple());
  EXPECT_TRUE(IsLinear(*program));
  EXPECT_TRUE(IsSwr(*program));
  EXPECT_TRUE(IsWr(*program));
  ClassificationReport report = Classify(*program, vocab);
  EXPECT_EQ(report.wr, ClassificationReport::Wr::kYes);
}

TEST(DlLiteTest, EndToEndCertainAnswersWithInverses) {
  Vocabulary vocab;
  StatusOr<TgdProgram> ontology = ParseDlLite(
      "Professor [= exists teaches\n"
      "exists teaches- [= Course\n"
      "taughtBy [= teaches-\n",
      &vocab);
  ASSERT_TRUE(ontology.ok()) << ontology.status();
  Database db;
  db.Insert(vocab.FindPredicate("Professor"),
            {Value::Constant(vocab.InternConstant("ada"))});
  db.Insert(vocab.FindPredicate("taughtBy"),
            {Value::Constant(vocab.InternConstant("logic101")),
             Value::Constant(vocab.InternConstant("bob"))});

  // Certain courses: logic101 (taughtBy flips into teaches, whose range
  // is Course). ada's course exists but is anonymous.
  ConjunctiveQuery query = MustQuery("q(X) :- Course(X).", &vocab);
  StatusOr<RewriteResult> rewriting = RewriteCq(query, *ontology);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status();
  std::vector<Tuple> answers = Evaluate(rewriting->ucq, db);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(ToString(answers[0], vocab), "(logic101)");

  // Boolean: does ada teach something? Certainly.
  ConjunctiveQuery boolean = MustQuery("q() :- teaches(ada, X).", &vocab);
  StatusOr<RewriteResult> boolean_rewriting = RewriteCq(boolean, *ontology);
  ASSERT_TRUE(boolean_rewriting.ok());
  EXPECT_EQ(Evaluate(boolean_rewriting->ucq, db).size(), 1u);

  // Cross-check against the chase.
  StatusOr<std::vector<Tuple>> cert =
      CertainAnswersViaChase(UnionOfCqs(query), *ontology, db);
  ASSERT_TRUE(cert.ok()) << cert.status();
  EXPECT_EQ(answers, *cert);
}

}  // namespace
}  // namespace ontorew

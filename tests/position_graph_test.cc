#include <set>
#include <string>
#include <vector>

#include "core/labels.h"
#include "core/position_graph.h"
#include "graph/digraph.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/paper_examples.h"

namespace ontorew {
namespace {

std::set<std::string> NodeNameSet(const PositionGraph& graph,
                                  const Vocabulary& vocab) {
  std::vector<std::string> names = graph.NodeNames(vocab);
  return std::set<std::string>(names.begin(), names.end());
}

// Collects "from -> to [labels]" strings for containment checks.
std::set<std::string> EdgeSet(const PositionGraph& graph,
                              const Vocabulary& vocab) {
  std::set<std::string> edges;
  std::vector<std::string> names = graph.NodeNames(vocab);
  for (const LabeledDigraph::Edge& edge : graph.graph().edges()) {
    edges.insert(names[static_cast<std::size_t>(edge.from)] + " -> " +
                 names[static_cast<std::size_t>(edge.to)] + " [" +
                 LabelsToString(edge.labels) + "]");
  }
  return edges;
}

TEST(PositionGraphTest, RequiresSimpleProgram) {
  Vocabulary vocab;
  TgdProgram program = PaperExample2(&vocab);  // Not simple.
  StatusOr<PositionGraph> graph = PositionGraph::Build(program);
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(PositionGraph::BuildUnchecked(program).ok());
}

// Figure 1: the position graph of Example 1. The paper's drawing shows
// {r[ ], s[ ], v[ ], t[ ], s[2], q[ ]}; Definition 4 point 1(b) also
// yields the sink t[1] (for the existential body variable y4 of R1),
// which the drawing omits.
TEST(PositionGraphTest, Figure1NodesAndEdges) {
  Vocabulary vocab;
  TgdProgram program = PaperExample1(&vocab);
  StatusOr<PositionGraph> graph = PositionGraph::Build(program);
  ASSERT_TRUE(graph.ok()) << graph.status();

  EXPECT_EQ(NodeNameSet(*graph, vocab),
            (std::set<std::string>{"r[ ]", "s[ ]", "v[ ]", "t[ ]", "s[2]",
                                   "q[ ]", "t[1]"}));

  std::set<std::string> edges = EdgeSet(*graph, vocab);
  // The two m-edges of the figure (plus the t[1] copy).
  EXPECT_TRUE(edges.count("r[ ] -> t[ ] [m]"));
  EXPECT_TRUE(edges.count("s[ ] -> q[ ] [m]"));
  // Unlabeled edges of the figure.
  EXPECT_TRUE(edges.count("r[ ] -> s[ ] []"));
  EXPECT_TRUE(edges.count("r[ ] -> s[2] []"));
  EXPECT_TRUE(edges.count("s[ ] -> v[ ] []"));
  EXPECT_TRUE(edges.count("v[ ] -> r[ ] []"));
  // No s-labels anywhere (the paper's key observation for Example 1).
  for (const LabeledDigraph::Edge& edge : graph->graph().edges()) {
    EXPECT_EQ(edge.labels & kLabelS, 0);
  }
}

// Figure 2: the position graph of Example 2, built although the program
// is not simple. The node set matches the figure exactly.
TEST(PositionGraphTest, Figure2Nodes) {
  Vocabulary vocab;
  TgdProgram program = PaperExample2(&vocab);
  StatusOr<PositionGraph> graph = PositionGraph::BuildUnchecked(program);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ(NodeNameSet(*graph, vocab),
            (std::set<std::string>{"r[ ]", "s[ ]", "r[2]", "t[ ]", "s[1]",
                                   "s[2]", "t[1]", "r[1]", "s[3]", "t[2]"}));
}

// The paper's point about Figure 2: the position graph misses the danger —
// no cycle carries both m and s (in fact no edge carries s at all), so the
// SWR criterion would wrongly accept this non-FO-rewritable set.
TEST(PositionGraphTest, Figure2HasNoDangerousCycle) {
  Vocabulary vocab;
  TgdProgram program = PaperExample2(&vocab);
  StatusOr<PositionGraph> graph = PositionGraph::BuildUnchecked(program);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_FALSE(
      HasDangerousCycle(graph->graph(), kLabelM | kLabelS, /*forbidden=*/0));
}

TEST(PositionGraphTest, TracingStopsAtExistentialHeadPositions) {
  Vocabulary vocab;
  // r[2] holds an existential head variable: R-compatibility (Definition
  // 3(ii)) rejects it, so r[2] must be a sink.
  TgdProgram program = MustProgram("s(X, Y) -> r(X, Z).", &vocab);
  StatusOr<PositionGraph> graph = PositionGraph::Build(program);
  ASSERT_TRUE(graph.ok()) << graph.status();
  int r2 = graph->NodeIndex(
      Position::At(vocab.FindPredicate("r"), 2));
  // r[2] is never created: no rule traces into it.
  EXPECT_EQ(r2, -1);
}

TEST(PositionGraphTest, SplitExistentialMarksAllApplicationEdges) {
  Vocabulary vocab;
  // Y is an existential body variable in two atoms: point 2 of
  // Definition 4 puts s on every edge of the application.
  TgdProgram program = MustProgram("p(X, Y), q(Y, X) -> r(X).", &vocab);
  StatusOr<PositionGraph> graph = PositionGraph::Build(program);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_GT(graph->graph().num_edges(), 0);
  for (const LabeledDigraph::Edge& edge : graph->graph().edges()) {
    EXPECT_NE(edge.labels & kLabelS, 0);
  }
}

TEST(PositionGraphTest, SelfRecursiveRuleBuildsCycle) {
  Vocabulary vocab;
  TgdProgram program = MustProgram("e(X, Y) -> e(Y, X).", &vocab);
  StatusOr<PositionGraph> graph = PositionGraph::Build(program);
  ASSERT_TRUE(graph.ok()) << graph.status();
  // e[ ] -> e[ ] self-loop, harmless (no labels).
  int e_generic = graph->NodeIndex(
      Position::Generic(vocab.FindPredicate("e")));
  ASSERT_GE(e_generic, 0);
  EXPECT_TRUE(graph->graph().HasEdge(e_generic, e_generic, 0));
  EXPECT_FALSE(HasDangerousCycle(graph->graph(), kLabelM | kLabelS, 0));
}

TEST(PositionGraphTest, DotExportMentionsPositions) {
  Vocabulary vocab;
  TgdProgram program = PaperExample1(&vocab);
  StatusOr<PositionGraph> graph = PositionGraph::Build(program);
  ASSERT_TRUE(graph.ok());
  std::string dot = graph->ToDot(vocab);
  EXPECT_NE(dot.find("r[ ]"), std::string::npos);
  EXPECT_NE(dot.find("s[2]"), std::string::npos);
}

}  // namespace
}  // namespace ontorew

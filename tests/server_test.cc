#include "server/server.h"

#include <atomic>
#include <chrono>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "base/fault_point.h"
#include "base/status.h"
#include "gtest/gtest.h"
#include "server/client.h"
#include "server/token_bucket.h"
#include "server/wire.h"

// The multi-tenant wire server (DESIGN.md §11): protocol parsing, the
// layered admission ladder (quota → tenant inflight → global slots with
// deadline-aware queueing), cross-tenant rewrite-cache sharing, the
// brownout ladder, and graceful drain. Tests that need a request held
// in-flight pin it deterministically with the serve.admit fault point's
// blocking handler — no sleep-and-hope.

namespace ontorew {
namespace {

constexpr const char kUniversityProgram[] = R"(
  teaches(X, C) -> professor(X).
  professor(X) -> employee(X).
  employee(X) -> person(X).
)";
constexpr const char kUniversityFacts[] = R"(
  teaches(ada, logic101).
  professor(turing).
)";

// Parses a full serialized response (header + body + END) as a client
// would.
WireResponse MustParse(const std::string& serialized) {
  std::vector<std::string> lines;
  std::string_view rest = serialized;
  while (!rest.empty()) {
    std::size_t nl = rest.find('\n');
    lines.emplace_back(rest.substr(0, nl));
    if (nl == std::string_view::npos) break;
    rest.remove_prefix(nl + 1);
  }
  EXPECT_GE(lines.size(), 2u) << serialized;
  EXPECT_EQ(lines.back().empty() ? lines[lines.size() - 2] : lines.back(),
            kWireEnd)
      << serialized;
  std::string header = lines.front();
  std::vector<std::string> body;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i] == kWireEnd) break;
    body.push_back(lines[i]);
  }
  StatusOr<WireResponse> parsed = ParseWireResponse(header, body);
  EXPECT_TRUE(parsed.ok()) << parsed.status() << " for: " << serialized;
  return parsed.ok() ? *std::move(parsed) : WireResponse{};
}

// Every server test starts and ends with a quiesced fault registry: a
// failing assertion in a chaos test must not leak an armed fault into
// the next one (the FaultQuiesce guard is the satellite this proves).
class ServerTest : public ::testing::Test {
 protected:
  FaultQuiesce quiesce_;
};

// --- Wire protocol ----------------------------------------------------------

TEST(WireTest, ParsesQueryWithAllOptions) {
  StatusOr<WireRequest> request = ParseWireRequest(
      "QUERY tenant=uni deadline_ms=250 trace=1 q(X) :- person(X).");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->verb, WireVerb::kQuery);
  EXPECT_EQ(request->tenant, "uni");
  EXPECT_EQ(request->deadline_ms, 250);
  EXPECT_TRUE(request->trace);
  EXPECT_EQ(request->query, "q(X) :- person(X).");
}

TEST(WireTest, QueryTextMayContainEqualsSigns) {
  // Only *recognized* key=value options are consumed; the first other
  // token starts the query, '=' and all.
  StatusOr<WireRequest> request =
      ParseWireRequest("QUERY tenant=uni q(X) :- label(X, \"a=b\").");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->query, "q(X) :- label(X, \"a=b\").");
}

TEST(WireTest, ControlVerbsParse) {
  for (const auto& [text, verb] :
       {std::pair<const char*, WireVerb>{"PING", WireVerb::kPing},
        {"STATS", WireVerb::kStats},
        {"TENANTS", WireVerb::kTenants}}) {
    StatusOr<WireRequest> request = ParseWireRequest(text);
    ASSERT_TRUE(request.ok()) << text;
    EXPECT_EQ(request->verb, verb);
  }
}

TEST(WireTest, TargetOptionParses) {
  StatusOr<WireRequest> cte = ParseWireRequest(
      "QUERY tenant=uni target=cte q(X) :- person(X).");
  ASSERT_TRUE(cte.ok()) << cte.status();
  ASSERT_TRUE(cte->target.has_value());
  EXPECT_EQ(*cte->target, RewriteTarget::kCte);
  EXPECT_EQ(cte->query, "q(X) :- person(X).");

  StatusOr<WireRequest> ucq = ParseWireRequest(
      "QUERY tenant=uni target=ucq deadline_ms=50 q(X) :- person(X).");
  ASSERT_TRUE(ucq.ok()) << ucq.status();
  ASSERT_TRUE(ucq->target.has_value());
  EXPECT_EQ(*ucq->target, RewriteTarget::kUcq);

  // Unset keeps the tenant default.
  StatusOr<WireRequest> plain =
      ParseWireRequest("QUERY tenant=uni q(X) :- person(X).");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->target.has_value());
}

TEST(WireTest, MalformedRequestsAreInvalidArgument) {
  for (const char* bad :
       {"FETCH tenant=uni q(X) :- r(X).",  // Unknown verb.
        "QUERY q(X) :- r(X).",             // No tenant.
        "QUERY tenant=uni",                // No query text.
        "QUERY tenant=uni target=csv q(X) :- r(X).",  // Unknown target.
        "QUERY tenant=uni deadline_ms=abc q(X) :- r(X)."}) {
    StatusOr<WireRequest> request = ParseWireRequest(bad);
    ASSERT_FALSE(request.ok()) << bad;
    EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_FALSE(IsRetryableStatusCode(request.status().code()));
  }
}

TEST(WireTest, ErrHeaderRoundTripsRetryableBit) {
  for (const Status& status :
       {ResourceExhaustedError("quota"), DeadlineExceededError("late"),
        UnavailableError("busy"), InvalidArgumentError("parse"),
        NotFoundError("tenant"), InternalError("bug")}) {
    const std::string header = FormatErrHeader(status, 25);
    StatusOr<WireResponse> response =
        ParseWireResponse(header, /*body=*/{});
    ASSERT_TRUE(response.ok()) << header;
    EXPECT_EQ(response->status.code(), status.code());
    EXPECT_EQ(response->status.message(), status.message());
    EXPECT_EQ(response->retryable, IsRetryableStatusCode(status.code()))
        << header;
    EXPECT_EQ(response->retry_after_ms, 25);
  }
}

TEST(WireTest, OkResponseSeparatesRowsFromInfoLines) {
  StatusOr<WireResponse> response = ParseWireResponse(
      "OK rows=2 cache=hit chase=0",
      {"(ada)", "(turing)", "# serve 1.2ms", "#   eval 0.9ms"});
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->status.ok());
  EXPECT_TRUE(response->cache_hit);
  EXPECT_EQ(response->rows, (std::vector<std::string>{"(ada)", "(turing)"}));
  EXPECT_EQ(response->info,
            (std::vector<std::string>{"serve 1.2ms", "  eval 0.9ms"}));
}

// --- TokenBucket ------------------------------------------------------------

TEST(TokenBucketTest, BurstThenRefillHint) {
  TokenBucket bucket(/*capacity=*/2, /*rate_per_sec=*/10);
  EXPECT_EQ(bucket.TryAcquire(), TokenBucket::Clock::duration::zero());
  EXPECT_EQ(bucket.TryAcquire(), TokenBucket::Clock::duration::zero());
  // Empty: the hint is the time until one token refills (~100ms at 10/s).
  const auto wait = bucket.TryAcquire();
  EXPECT_GT(wait, TokenBucket::Clock::duration::zero());
  EXPECT_LE(wait, std::chrono::milliseconds(150));
}

TEST(TokenBucketTest, RefillsOverTime) {
  TokenBucket bucket(/*capacity=*/1, /*rate_per_sec=*/1000);
  EXPECT_EQ(bucket.TryAcquire(), TokenBucket::Clock::duration::zero());
  EXPECT_GT(bucket.TryAcquire(), TokenBucket::Clock::duration::zero());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(bucket.TryAcquire(), TokenBucket::Clock::duration::zero());
}

TEST(TokenBucketTest, NonPositiveCapacityIsUnlimited) {
  TokenBucket bucket(/*capacity=*/0, /*rate_per_sec=*/0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(bucket.TryAcquire(), TokenBucket::Clock::duration::zero());
  }
}

// --- End-to-end over TCP ----------------------------------------------------

TEST_F(ServerTest, ServesQueriesOverTcpWithSharedCacheAcrossTenants) {
  OntologyServer server;
  // Two tenants hosting the SAME ontology: cache keys embed the program
  // fingerprint, so the second tenant's first query is already a hit.
  for (const char* name : {"uni-a", "uni-b"}) {
    ASSERT_TRUE(server
                    .AddTenant({.name = name,
                                .program_text = kUniversityProgram,
                                .facts_text = kUniversityFacts})
                    .ok());
  }
  ASSERT_TRUE(server.Start().ok());

  StatusOr<ServerClient> connected = ServerClient::Connect(server.port());
  ASSERT_TRUE(connected.ok()) << connected.status();
  ServerClient client = std::move(connected).value();
  ASSERT_TRUE(client.Ping().ok());

  StatusOr<WireResponse> first =
      client.Query("uni-a", "q(X) :- person(X).");
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(first->status.ok()) << first->status;
  EXPECT_FALSE(first->cache_hit);
  EXPECT_EQ(first->rows,
            (std::vector<std::string>{"(ada)", "(turing)"}));

  StatusOr<WireResponse> second =
      client.Query("uni-a", "q(X) :- person(X).");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->rows, first->rows);

  // The twin tenant never computed this rewriting — the shared cache did.
  StatusOr<WireResponse> twin =
      client.Query("uni-b", "q(X) :- person(X).");
  ASSERT_TRUE(twin.ok());
  EXPECT_TRUE(twin->cache_hit);
  EXPECT_EQ(twin->rows, first->rows);
  EXPECT_GE(server.shared_cache_stats().hits, 2);

  EXPECT_TRUE(server.Shutdown(std::chrono::seconds(2)).ok());
}

TEST_F(ServerTest, SqliteTenantAnswersWithTraceOverTcp) {
  OntologyServer server;
  ASSERT_TRUE(server
                  .AddTenant({.name = "reg",
                              .program_text = kUniversityProgram,
                              .facts_text = kUniversityFacts,
                              .use_sqlite = true})
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  StatusOr<ServerClient> connected = ServerClient::Connect(server.port());
  ASSERT_TRUE(connected.ok());
  ServerClient client = std::move(connected).value();
  StatusOr<WireResponse> response = client.Query(
      "reg", "q(X) :- employee(X).", /*deadline_ms=*/0, /*trace=*/true);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->status.ok()) << response->status;
  EXPECT_EQ(response->rows,
            (std::vector<std::string>{"(ada)", "(turing)"}));
  EXPECT_FALSE(response->info.empty());  // The span tree came back.
}

TEST_F(ServerTest, CteTargetRoundTripsWithoutAliasingCacheEntries) {
  OntologyServer server;
  ASSERT_TRUE(server
                  .AddTenant({.name = "uni",
                              .program_text = kUniversityProgram,
                              .facts_text = kUniversityFacts,
                              .use_sqlite = true})
                  .ok());
  // person(X) expands four ways under the ontology, so the joined query
  // below saturates into a union with a genuinely shared teaches-slot —
  // the CTE target factors it instead of shipping the flat UNION.
  const char* line = "QUERY tenant=uni %s q(X) :- teaches(X, C), person(X).";
  auto query = [&](const char* target_opt) {
    std::string request(line);
    request.replace(request.find("%s"), 2, target_opt);
    return MustParse(server.ServeLine(request));
  };

  const WireResponse flat = query("");
  ASSERT_TRUE(flat.status.ok()) << flat.status;
  EXPECT_FALSE(flat.cache_hit);
  EXPECT_EQ(flat.rows, std::vector<std::string>{"(ada)"});

  // The cte entry is keyed separately: no aliasing with the flat one,
  // same answers through the WITH-CTE execution path.
  const WireResponse cte = query("target=cte");
  ASSERT_TRUE(cte.status.ok()) << cte.status;
  EXPECT_FALSE(cte.cache_hit);
  EXPECT_EQ(cte.rows, flat.rows);

  // Warm repeats hit their own target's entry; an explicit target=ucq is
  // the default entry, already cached by the first query.
  EXPECT_TRUE(query("target=cte").cache_hit);
  EXPECT_TRUE(query("target=ucq").cache_hit);

  const WireResponse bad = query("target=csv");
  EXPECT_EQ(bad.status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(bad.retryable);
}

TEST_F(ServerTest, ErrorTaxonomyOnTheWire) {
  OntologyServer server;
  ASSERT_TRUE(server
                  .AddTenant({.name = "uni",
                              .program_text = kUniversityProgram,
                              .facts_text = kUniversityFacts})
                  .ok());
  // In-process: ServeLine is the whole server minus the sockets.
  const WireResponse unknown = MustParse(
      server.ServeLine("QUERY tenant=ghost q(X) :- person(X)."));
  EXPECT_EQ(unknown.status.code(), StatusCode::kNotFound);
  EXPECT_FALSE(unknown.retryable);

  const WireResponse malformed =
      MustParse(server.ServeLine("QUERY tenant=uni q(X) :- ~~nope"));
  EXPECT_EQ(malformed.status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(malformed.retryable);

  const WireResponse bad_verb = MustParse(server.ServeLine("HELO"));
  EXPECT_EQ(bad_verb.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, QuotaShedIsRetryableWithServerBackoffHint) {
  OntologyServer server;
  ASSERT_TRUE(server
                  .AddTenant({.name = "uni",
                              .program_text = kUniversityProgram,
                              .facts_text = kUniversityFacts,
                              .quota = {.qps = 5, .burst = 2}})
                  .ok());
  // Burn the burst.
  for (int i = 0; i < 2; ++i) {
    const WireResponse ok =
        MustParse(server.ServeLine("QUERY tenant=uni q(X) :- person(X)."));
    ASSERT_TRUE(ok.status.ok()) << ok.status;
  }
  const WireResponse shed =
      MustParse(server.ServeLine("QUERY tenant=uni q(X) :- person(X)."));
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(shed.retryable);
  // The hint is the bucket's exact refill time (~200ms at 5 qps), not a
  // generic constant.
  EXPECT_GE(shed.retry_after_ms, 1);
  EXPECT_LE(shed.retry_after_ms, 250);
  EXPECT_GE(server.metrics().Snapshot().Counter("server_shed_quota"), 1);
}

TEST_F(ServerTest, RetryingClientOutlivesQuotaShed) {
  OntologyServer server;
  ASSERT_TRUE(server
                  .AddTenant({.name = "uni",
                              .program_text = kUniversityProgram,
                              .facts_text = kUniversityFacts,
                              .quota = {.qps = 20, .burst = 1}})
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  RetryPolicy policy;
  policy.max_attempts = 8;
  RetryingClient client(server.port(), policy);
  // Back-to-back queries exceed the 1-token burst; the retry loop honours
  // the server's retry_after hint and every request ultimately succeeds.
  for (int i = 0; i < 3; ++i) {
    StatusOr<WireResponse> response =
        client.Query("uni", "q(X) :- person(X).");
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_TRUE(response->status.ok()) << response->status;
    EXPECT_EQ(response->rows.size(), 2u);
  }
  EXPECT_GE(client.retries(), 1);
}

// Holds one admitted request in flight via the serve.admit fault point.
struct HeldRequest {
  std::promise<void> reached_promise;
  std::promise<void> release_promise;
  std::future<void> reached = reached_promise.get_future();
  std::shared_future<void> release = release_promise.get_future().share();
  std::atomic<bool> fired{false};

  FaultPointConfig Config() {
    FaultPointConfig hold;
    hold.handler = [this](std::string_view) {
      if (!fired.exchange(true)) {  // Only the first request blocks.
        reached_promise.set_value();
        release.wait();
      }
      return Status::Ok();
    };
    return hold;
  }
};

TEST_F(ServerTest, TenantInflightCapShedsConcurrentRequests) {
  OntologyServer server;
  ASSERT_TRUE(server
                  .AddTenant({.name = "uni",
                              .program_text = kUniversityProgram,
                              .facts_text = kUniversityFacts,
                              .quota = {.max_inflight = 1}})
                  .ok());
  HeldRequest held;
  ScopedFault fault("serve.admit", held.Config());
  std::optional<WireResponse> first;
  std::thread holder([&] {
    first = MustParse(server.ServeLine("QUERY tenant=uni q(X) :- person(X)."));
  });
  held.reached.wait();

  const WireResponse shed =
      MustParse(server.ServeLine("QUERY tenant=uni q(X) :- person(X)."));
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(shed.retryable);
  EXPECT_GE(
      server.metrics().Snapshot().Counter("server_shed_tenant_inflight"), 1);

  held.release_promise.set_value();
  holder.join();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->status.ok()) << first->status;
  EXPECT_EQ(first->rows.size(), 2u);  // The held request lost nothing.
}

TEST_F(ServerTest, QueueDeadlineExpiryIsDeadlineExceededNotShed) {
  OntologyServerOptions options;
  options.max_inflight_global = 1;
  options.admission_timeout = std::chrono::seconds(10);
  OntologyServer server(options);
  ASSERT_TRUE(server
                  .AddTenant({.name = "uni",
                              .program_text = kUniversityProgram,
                              .facts_text = kUniversityFacts})
                  .ok());
  HeldRequest held;
  ScopedFault fault("serve.admit", held.Config());
  std::optional<WireResponse> first;
  std::thread holder([&] {
    first = MustParse(server.ServeLine("QUERY tenant=uni q(X) :- person(X)."));
  });
  held.reached.wait();

  // The slot is taken and the admission timeout is far away: this
  // request's own 50ms budget dies in the queue. That is the CALLER's
  // deadline — DeadlineExceeded — not a server shed.
  const WireResponse queued = MustParse(server.ServeLine(
      "QUERY tenant=uni deadline_ms=50 q(X) :- person(X)."));
  EXPECT_EQ(queued.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(queued.retryable);
  const MetricsSnapshot snapshot = server.metrics().Snapshot();
  EXPECT_GE(snapshot.Counter("server_queue_deadline"), 1);
  EXPECT_EQ(snapshot.Counter("server_shed_global"), 0);

  held.release_promise.set_value();
  holder.join();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->status.ok()) << first->status;
}

TEST_F(ServerTest, BrownoutShedsTracingBeforeShedingRequests) {
  OntologyServerOptions options;
  options.max_inflight_global = 2;
  // A request's own slot counts toward the ratio: one inflight request
  // (1/2 = 0.5) stays healthy, two (2/2 = 1.0) trip both rungs.
  options.shed_tracing_ratio = 0.75;
  options.shed_optional_ratio = 1.0;
  OntologyServer server(options);
  ASSERT_TRUE(server
                  .AddTenant({.name = "uni",
                              .program_text = kUniversityProgram,
                              .facts_text = kUniversityFacts})
                  .ok());
  HeldRequest held;
  ScopedFault fault("serve.admit", held.Config());
  std::optional<WireResponse> first;
  std::thread holder([&] {
    first = MustParse(server.ServeLine("QUERY tenant=uni q(X) :- person(X)."));
  });
  held.reached.wait();
  EXPECT_EQ(server.brownout_level(), 0);  // One slot of two: healthy.

  // Under brownout the trace is shed but the ANSWERS are not: same rows,
  // no span tree, and the request was never rejected.
  const WireResponse degraded = MustParse(
      server.ServeLine("QUERY tenant=uni trace=1 q(X) :- person(X)."));
  ASSERT_TRUE(degraded.status.ok()) << degraded.status;
  EXPECT_EQ(degraded.rows,
            (std::vector<std::string>{"(ada)", "(turing)"}));
  EXPECT_TRUE(degraded.info.empty());
  EXPECT_GE(server.metrics().Snapshot().Counter("brownout_shed_tracing"), 1);

  held.release_promise.set_value();
  holder.join();
  EXPECT_EQ(server.brownout_level(), 0);

  // Healthy again: the same request now gets its trace.
  const WireResponse traced = MustParse(
      server.ServeLine("QUERY tenant=uni trace=1 q(X) :- person(X)."));
  ASSERT_TRUE(traced.status.ok());
  EXPECT_FALSE(traced.info.empty());
}

TEST_F(ServerTest, GracefulDrainShedsNewWorkAndFinishesInflight) {
  OntologyServer server;
  ASSERT_TRUE(server
                  .AddTenant({.name = "uni",
                              .program_text = kUniversityProgram,
                              .facts_text = kUniversityFacts})
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  HeldRequest held;
  ScopedFault fault("serve.admit", held.Config());
  std::optional<StatusOr<WireResponse>> inflight;
  std::thread holder([&] {
    StatusOr<ServerClient> connected = ServerClient::Connect(port);
    ASSERT_TRUE(connected.ok());
    ServerClient client = std::move(connected).value();
    inflight = client.Query("uni", "q(X) :- person(X).");
  });
  held.reached.wait();

  std::optional<Status> drained;
  std::thread shutdown([&] {
    drained = server.Shutdown(std::chrono::seconds(5));
  });
  // Give the drain a moment to flip the listener into shed mode.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // New work during the drain: an immediate retryable shed, never a hang.
  StatusOr<ServerClient> late_conn = ServerClient::Connect(port);
  if (late_conn.ok()) {
    ServerClient late = std::move(late_conn).value();
    StatusOr<WireResponse> shed = late.Query("uni", "q(X) :- person(X).");
    if (shed.ok()) {
      EXPECT_FALSE(shed->status.ok());
      EXPECT_TRUE(shed->retryable) << shed->status;
    }  // A dropped connection is the other legal outcome.
  }

  // The inflight request finishes with FULL answers: drain ≠ data loss.
  held.release_promise.set_value();
  holder.join();
  shutdown.join();
  ASSERT_TRUE(drained.has_value());
  EXPECT_TRUE(drained->ok()) << *drained;
  ASSERT_TRUE(inflight.has_value());
  ASSERT_TRUE(inflight->ok()) << inflight->status();
  ASSERT_TRUE((*inflight)->status.ok()) << (*inflight)->status;
  EXPECT_EQ((*inflight)->rows,
            (std::vector<std::string>{"(ada)", "(turing)"}));
}

TEST_F(ServerTest, DrainDeadlineCancelsStragglersWithRetryableError) {
  OntologyServer server;  // No Start: in-process requests only.
  ASSERT_TRUE(server
                  .AddTenant({.name = "uni",
                              .program_text = kUniversityProgram,
                              .facts_text = kUniversityFacts})
                  .ok());
  HeldRequest held;
  ScopedFault fault("serve.admit", held.Config());
  std::optional<WireResponse> straggler;
  std::thread holder([&] {
    straggler =
        MustParse(server.ServeLine("QUERY tenant=uni q(X) :- person(X)."));
  });
  held.reached.wait();

  // The straggler ignores the 50ms drain budget, so Shutdown cancels it
  // through the server-wide token and reports the overrun.
  std::optional<Status> drained;
  std::thread shutdown([&] {
    drained = server.Shutdown(std::chrono::milliseconds(50));
  });
  shutdown.join();
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(drained->code(), StatusCode::kDeadlineExceeded);

  held.release_promise.set_value();
  holder.join();
  ASSERT_TRUE(straggler.has_value());
  // Cancelled mid-drain maps to the retryable "server went away", never
  // a partial answer set.
  EXPECT_FALSE(straggler->status.ok());
  EXPECT_EQ(straggler->status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(straggler->retryable);
  EXPECT_TRUE(straggler->rows.empty());
}

TEST_F(ServerTest, StatsAndTenantsVerbs) {
  OntologyServer server;
  ASSERT_TRUE(server
                  .AddTenant({.name = "uni",
                              .program_text = kUniversityProgram,
                              .facts_text = kUniversityFacts})
                  .ok());
  ASSERT_TRUE(
      MustParse(server.ServeLine("QUERY tenant=uni q(X) :- person(X)."))
          .status.ok());
  const WireResponse stats = MustParse(server.ServeLine("STATS"));
  ASSERT_TRUE(stats.status.ok());
  EXPECT_FALSE(stats.info.empty());

  const WireResponse tenants = MustParse(server.ServeLine("TENANTS"));
  ASSERT_TRUE(tenants.status.ok());
  ASSERT_EQ(tenants.info.size(), 1u);
  EXPECT_NE(tenants.info[0].find("uni"), std::string::npos);
}

TEST_F(ServerTest, AddTenantValidation) {
  OntologyServer server;
  EXPECT_EQ(server.AddTenant({.name = ""}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(server
                  .AddTenant({.name = "uni",
                              .program_text = kUniversityProgram,
                              .facts_text = kUniversityFacts})
                  .ok());
  EXPECT_EQ(server
                .AddTenant({.name = "uni",
                            .program_text = kUniversityProgram,
                            .facts_text = kUniversityFacts})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server.AddTenant({.name = "bad", .program_text = "r(X ->"})
                .code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server
                .AddTenant({.name = "late",
                            .program_text = kUniversityProgram,
                            .facts_text = kUniversityFacts})
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ServerTest, ConnectionFaultsNeverLeakSlotsOrCrash) {
  OntologyServer server;
  ASSERT_TRUE(server
                  .AddTenant({.name = "uni",
                              .program_text = kUniversityProgram,
                              .facts_text = kUniversityFacts})
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  // Every accept drops the connection; every read tears. Clients see
  // transport errors (typed Unavailable), the server sheds slots cleanly.
  FaultRegistry::Global().Arm("server.accept", {.probability = 1.0});
  for (int i = 0; i < 5; ++i) {
    StatusOr<ServerClient> connected = ServerClient::Connect(server.port());
    if (!connected.ok()) continue;
    ServerClient client = std::move(connected).value();
    StatusOr<WireResponse> response =
        client.Query("uni", "q(X) :- person(X).");
    ASSERT_FALSE(response.ok());
    EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_GE(server.metrics().Snapshot().Counter("server_accept_faults"), 1);
  FaultRegistry::Global().ResetAll();

  // Disarmed: the same server serves again — nothing leaked.
  StatusOr<ServerClient> connected = ServerClient::Connect(server.port());
  ASSERT_TRUE(connected.ok());
  ServerClient client = std::move(connected).value();
  StatusOr<WireResponse> response =
      client.Query("uni", "q(X) :- person(X).");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.ok());
  EXPECT_EQ(server.inflight(), 0u);
}

TEST_F(ServerTest, SqliteBusyBurstAbsorbedInvisibly) {
  OntologyServer server;
  ASSERT_TRUE(server
                  .AddTenant({.name = "reg",
                              .program_text = kUniversityProgram,
                              .facts_text = kUniversityFacts,
                              .use_sqlite = true})
                  .ok());
  // A burst of three synthetic SQLITE_BUSY hits: the backend's bounded
  // exponential backoff retries through them; the caller never notices.
  int busy_left = 3;
  FaultPointConfig burst;
  burst.handler = [&busy_left](std::string_view) {
    if (busy_left > 0) {
      --busy_left;
      return InternalError("synthetic SQLITE_BUSY");
    }
    return Status::Ok();
  };
  FaultRegistry::Global().Arm("backend.busy", burst);
  const WireResponse response =
      MustParse(server.ServeLine("QUERY tenant=reg q(X) :- person(X)."));
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_EQ(response.rows, (std::vector<std::string>{"(ada)", "(turing)"}));
  EXPECT_EQ(busy_left, 0);  // The burst really happened.
}

}  // namespace
}  // namespace ontorew

#include <algorithm>
#include <string>
#include <vector>

#include "base/rng.h"
#include "gtest/gtest.h"
#include "logic/canonical.h"
#include "test_util.h"

namespace ontorew {
namespace {

TEST(CanonicalTest, RenameByFirstOccurrence) {
  Vocabulary vocab;
  std::vector<Atom> atoms = {MustAtom("r(B, A)", &vocab),
                             MustAtom("s(A, C)", &vocab)};
  std::vector<Atom> renamed = RenameByFirstOccurrence(atoms);
  EXPECT_EQ(renamed[0].term(0), Term::Var(0));  // B -> 0
  EXPECT_EQ(renamed[0].term(1), Term::Var(1));  // A -> 1
  EXPECT_EQ(renamed[1].term(0), Term::Var(1));  // A again
  EXPECT_EQ(renamed[1].term(1), Term::Var(2));  // C -> 2
}

TEST(CanonicalTest, RenamingPreservesConstants) {
  Vocabulary vocab;
  std::vector<Atom> atoms = {MustAtom("r(X, a)", &vocab)};
  std::vector<Atom> renamed = RenameByFirstOccurrence(atoms);
  EXPECT_TRUE(renamed[0].term(1).is_constant());
}

TEST(CanonicalTest, KeyInvariantUnderVariableRenaming) {
  Vocabulary vocab;
  ConjunctiveQuery a = MustQuery("q(X) :- r(X, Y), s(Y, Z).", &vocab);
  ConjunctiveQuery b = MustQuery("q(U) :- r(U, V), s(V, W).", &vocab);
  EXPECT_EQ(CanonicalCqKey(a), CanonicalCqKey(b));
}

TEST(CanonicalTest, KeyInvariantUnderAtomPermutation) {
  Vocabulary vocab;
  ConjunctiveQuery a = MustQuery("q(X) :- r(X, Y), s(Y, Z).", &vocab);
  ConjunctiveQuery b = MustQuery("q(X) :- s(Y, Z), r(X, Y).", &vocab);
  EXPECT_EQ(CanonicalCqKey(a), CanonicalCqKey(b));
}

TEST(CanonicalTest, DistinguishesDifferentJoins) {
  Vocabulary vocab;
  ConjunctiveQuery chain = MustQuery("q(X) :- r(X, Y), r(Y, Z).", &vocab);
  ConjunctiveQuery fork = MustQuery("q(X) :- r(X, Y), r(X, Z).", &vocab);
  EXPECT_NE(CanonicalCqKey(chain), CanonicalCqKey(fork));
}

TEST(CanonicalTest, DistinguishesAnswerArity) {
  Vocabulary vocab;
  ConjunctiveQuery one = MustQuery("q(X) :- r(X, Y).", &vocab);
  ConjunctiveQuery two = MustQuery("q(X, Y) :- r(X, Y).", &vocab);
  EXPECT_NE(CanonicalCqKey(one), CanonicalCqKey(two));
}

TEST(CanonicalTest, DistinguishesRepeatedAnswerVariables) {
  Vocabulary vocab;
  ConjunctiveQuery ab = MustQuery("q(X, Y) :- r(X, Y).", &vocab);
  ConjunctiveQuery aa = MustQuery("q(X, X) :- r(X, X).", &vocab);
  EXPECT_NE(CanonicalCqKey(ab), CanonicalCqKey(aa));
}

TEST(CanonicalTest, ConstantsKeptInKey) {
  Vocabulary vocab;
  ConjunctiveQuery a = MustQuery("q(X) :- r(X, alice).", &vocab);
  ConjunctiveQuery b = MustQuery("q(X) :- r(X, bob).", &vocab);
  EXPECT_NE(CanonicalCqKey(a), CanonicalCqKey(b));
}

// Property sweep: random CQs keep their key under random variable
// renaming + atom shuffling.
class CanonicalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CanonicalPropertyTest, KeyStableUnderIsomorphism) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1000003);
  Vocabulary vocab;
  PredicateId r = vocab.MustPredicate("r", 2);
  PredicateId s = vocab.MustPredicate("s", 3);

  for (int round = 0; round < 50; ++round) {
    int num_atoms = rng.UniformIn(1, 5);
    int num_vars = rng.UniformIn(1, 6);
    std::vector<Atom> body;
    for (int i = 0; i < num_atoms; ++i) {
      if (rng.Bernoulli(0.5)) {
        body.push_back(
            Atom(r, {Term::Var(rng.Uniform(num_vars)),
                     Term::Var(rng.Uniform(num_vars))}));
      } else {
        body.push_back(Atom(s, {Term::Var(rng.Uniform(num_vars)),
                                Term::Var(rng.Uniform(num_vars)),
                                Term::Var(rng.Uniform(num_vars))}));
      }
    }
    std::vector<VariableId> answer = {body.front().term(0).id()};
    ConjunctiveQuery original(answer, body);

    // Isomorphic copy: shift variable ids and shuffle atoms.
    const VariableId shift = 100;
    std::vector<Atom> shifted;
    for (const Atom& atom : body) {
      std::vector<Term> terms;
      for (Term t : atom.terms()) terms.push_back(Term::Var(t.id() + shift));
      shifted.emplace_back(atom.predicate(), std::move(terms));
    }
    for (int i = static_cast<int>(shifted.size()) - 1; i > 0; --i) {
      std::swap(shifted[static_cast<std::size_t>(i)],
                shifted[static_cast<std::size_t>(rng.Uniform(i + 1))]);
    }
    ConjunctiveQuery copy(std::vector<VariableId>{answer[0] + shift},
                          shifted);

    EXPECT_EQ(CanonicalCqKey(original), CanonicalCqKey(copy))
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ontorew

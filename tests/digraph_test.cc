#include <set>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "gtest/gtest.h"

namespace ontorew {
namespace {

constexpr LabelMask kA = 1;
constexpr LabelMask kB = 2;
constexpr LabelMask kC = 4;

TEST(DigraphTest, NodesAndEdges) {
  LabeledDigraph graph;
  int first = graph.AddNodes(3);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(graph.num_nodes(), 3);
  int e = graph.AddEdge(0, 1, kA);
  EXPECT_EQ(graph.edge(e).from, 0);
  EXPECT_EQ(graph.edge(e).to, 1);
  EXPECT_TRUE(graph.HasEdge(0, 1, kA));
  EXPECT_FALSE(graph.HasEdge(0, 1, kB));
  EXPECT_FALSE(graph.HasEdge(1, 0, kA));
}

TEST(SccTest, ChainIsAllSingletons) {
  LabeledDigraph graph;
  graph.AddNodes(4);
  graph.AddEdge(0, 1, 0);
  graph.AddEdge(1, 2, 0);
  graph.AddEdge(2, 3, 0);
  SccResult scc = StronglyConnectedComponents(graph);
  EXPECT_EQ(scc.num_components, 4);
  std::set<int> components(scc.component.begin(), scc.component.end());
  EXPECT_EQ(components.size(), 4u);
}

TEST(SccTest, CycleCollapses) {
  LabeledDigraph graph;
  graph.AddNodes(4);
  graph.AddEdge(0, 1, 0);
  graph.AddEdge(1, 2, 0);
  graph.AddEdge(2, 0, 0);
  graph.AddEdge(2, 3, 0);
  SccResult scc = StronglyConnectedComponents(graph);
  EXPECT_EQ(scc.num_components, 2);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[1], scc.component[2]);
  EXPECT_NE(scc.component[3], scc.component[0]);
}

TEST(SccTest, DeepChainNoStackOverflow) {
  // The iterative Tarjan must handle deep graphs.
  LabeledDigraph graph;
  const int n = 200000;
  graph.AddNodes(n);
  for (int i = 0; i + 1 < n; ++i) graph.AddEdge(i, i + 1, 0);
  graph.AddEdge(n - 1, 0, 0);  // One big cycle.
  SccResult scc = StronglyConnectedComponents(graph);
  EXPECT_EQ(scc.num_components, 1);
}

TEST(DangerousCycleTest, RequiresAllLabels) {
  LabeledDigraph graph;
  graph.AddNodes(2);
  graph.AddEdge(0, 1, kA);
  graph.AddEdge(1, 0, kB);
  EXPECT_TRUE(HasDangerousCycle(graph, kA | kB, 0));
  EXPECT_TRUE(HasDangerousCycle(graph, kA, 0));
  EXPECT_FALSE(HasDangerousCycle(graph, kC, 0));
  EXPECT_FALSE(HasDangerousCycle(graph, kA | kC, 0));
}

TEST(DangerousCycleTest, LabelsMustBeOnOneCycle) {
  // Two disjoint cycles, one carrying A, the other B: no single closed
  // walk carries both.
  LabeledDigraph graph;
  graph.AddNodes(4);
  graph.AddEdge(0, 1, kA);
  graph.AddEdge(1, 0, 0);
  graph.AddEdge(2, 3, kB);
  graph.AddEdge(3, 2, 0);
  EXPECT_TRUE(HasDangerousCycle(graph, kA, 0));
  EXPECT_TRUE(HasDangerousCycle(graph, kB, 0));
  EXPECT_FALSE(HasDangerousCycle(graph, kA | kB, 0));
}

TEST(DangerousCycleTest, ForbiddenLabelBreaksCycle) {
  LabeledDigraph graph;
  graph.AddNodes(2);
  graph.AddEdge(0, 1, kA);
  graph.AddEdge(1, 0, kB | kC);
  EXPECT_TRUE(HasDangerousCycle(graph, kA | kB, 0));
  // Forbidding C removes the only return edge.
  EXPECT_FALSE(HasDangerousCycle(graph, kA | kB, kC));
  EXPECT_FALSE(HasDangerousCycle(graph, kA, kC));
}

TEST(DangerousCycleTest, SelfLoopCounts) {
  LabeledDigraph graph;
  graph.AddNodes(1);
  graph.AddEdge(0, 0, kA | kB);
  EXPECT_TRUE(HasDangerousCycle(graph, kA | kB, 0));
}

TEST(DangerousCycleTest, AcyclicGraphIsSafe) {
  LabeledDigraph graph;
  graph.AddNodes(3);
  graph.AddEdge(0, 1, kA | kB | kC);
  graph.AddEdge(1, 2, kA | kB | kC);
  EXPECT_FALSE(HasDangerousCycle(graph, 0, 0));
  EXPECT_FALSE(HasDangerousCycle(graph, kA, 0));
}

// Checks that the witness is a genuine closed walk covering the required
// labels and avoiding the forbidden ones.
void CheckWitness(const LabeledDigraph& graph, LabelMask required,
                  LabelMask forbidden) {
  CycleWitness witness = FindDangerousCycle(graph, required, forbidden);
  ASSERT_TRUE(witness.found);
  ASSERT_FALSE(witness.edges.empty());
  LabelMask seen = 0;
  for (std::size_t i = 0; i < witness.edges.size(); ++i) {
    const LabeledDigraph::Edge& edge = graph.edge(witness.edges[i]);
    const LabeledDigraph::Edge& next =
        graph.edge(witness.edges[(i + 1) % witness.edges.size()]);
    EXPECT_EQ(edge.to, next.from) << "walk must be connected";
    EXPECT_EQ(edge.labels & forbidden, 0);
    seen |= edge.labels;
  }
  EXPECT_EQ(seen & required, required);
}

TEST(DangerousCycleTest, WitnessIsValidClosedWalk) {
  LabeledDigraph graph;
  graph.AddNodes(5);
  graph.AddEdge(0, 1, kA);
  graph.AddEdge(1, 2, 0);
  graph.AddEdge(2, 0, kB);
  graph.AddEdge(2, 3, kC);   // Dead-end branch.
  graph.AddEdge(3, 4, kC);
  CheckWitness(graph, kA | kB, 0);
}

TEST(DangerousCycleTest, WitnessAvoidsForbidden) {
  LabeledDigraph graph;
  graph.AddNodes(3);
  // Two parallel return paths; only one avoids the forbidden label.
  graph.AddEdge(0, 1, kA);
  graph.AddEdge(1, 0, kC);  // Forbidden.
  graph.AddEdge(1, 2, kB);
  graph.AddEdge(2, 0, 0);
  CheckWitness(graph, kA | kB, kC);
}

TEST(DotExportTest, ContainsNodesAndLabels) {
  LabeledDigraph graph;
  graph.AddNodes(2);
  graph.AddEdge(0, 1, kA | kB);
  std::string dot = ToDot(graph, {"alpha", "beta"}, {{kA, "a"}, {kB, "b"}});
  EXPECT_NE(dot.find("alpha"), std::string::npos);
  EXPECT_NE(dot.find("beta"), std::string::npos);
  EXPECT_NE(dot.find("a,b"), std::string::npos);
}

}  // namespace
}  // namespace ontorew

// End-to-end OBDA over the university ontology: the full pipeline the
// paper's Section 1 motivates — intensional knowledge in TGDs, extensional
// data in the relational engine, query answering via FO rewriting.

#include <vector>

#include "base/rng.h"
#include "chase/chase.h"
#include "classes/classifier.h"
#include "db/eval.h"
#include "gtest/gtest.h"
#include "rewriting/rewriter.h"
#include "test_util.h"
#include "workload/university.h"

namespace ontorew {
namespace {

class UniversityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ontology_ = UniversityOntology(&vocab_);
    Rng rng(4242);
    UniversityInstanceOptions options;
    options.num_professors = 5;
    options.num_lecturers = 4;
    options.num_students = 30;
    options.num_phd_students = 6;
    options.num_courses = 8;
    db_ = UniversityInstance(options, &rng, &vocab_);
  }

  std::vector<Tuple> Answer(const char* query_text) {
    ConjunctiveQuery query = MustQuery(query_text, &vocab_);
    StatusOr<RewriteResult> rewriting = RewriteCq(query, ontology_);
    EXPECT_TRUE(rewriting.ok()) << rewriting.status();
    EvalOptions options;
    options.drop_tuples_with_nulls = true;
    return Evaluate(rewriting->ucq, db_, options);
  }

  Vocabulary vocab_;
  TgdProgram ontology_;
  Database db_;
};

TEST_F(UniversityTest, OntologyIsEverythingNice) {
  ClassificationReport report = Classify(ontology_, vocab_);
  EXPECT_TRUE(report.is_simple);
  EXPECT_TRUE(report.linear);
  EXPECT_TRUE(report.swr);
  EXPECT_EQ(report.wr, ClassificationReport::Wr::kYes);
  EXPECT_TRUE(report.weakly_acyclic);
}

TEST_F(UniversityTest, DerivedConceptsAreEmptyWithoutReasoning) {
  // Direct evaluation sees no persons at all: the data stores only raw
  // predicates. This is the OWA vs CWA gap of the paper's introduction.
  ConjunctiveQuery direct = MustQuery("q(X) :- person(X).", &vocab_);
  EXPECT_TRUE(Evaluate(direct, db_).empty());
  // With the ontology, everyone is a person: 5 + 4 teachers as faculty,
  // and the 6 phd students via phd -> student -> person; plain students
  // appear via enrolled(X, Y) -> student(X).
  std::vector<Tuple> persons = Answer("q(X) :- person(X).");
  EXPECT_EQ(persons.size(), 5u + 4u + 30u + 6u);
}

TEST_F(UniversityTest, FacultyClosure) {
  std::vector<Tuple> faculty = Answer("q(X) :- faculty(X).");
  EXPECT_EQ(faculty.size(), 9u);  // Professors + lecturers.
}

TEST_F(UniversityTest, MandatoryParticipationIsCertainButAnonymous) {
  // Every faculty member certainly teaches *something*
  // (faculty(X) -> teaches(X, Y)), so the boolean projection holds for
  // each of them...
  std::vector<Tuple> teachers = Answer("q(X) :- teaches(X, Y).");
  EXPECT_EQ(teachers.size(), 9u);
  // ...but the open query only returns the concrete teaching edges from
  // the data (the existential witness is not a certain answer).
  std::vector<Tuple> pairs = Answer("q(X, Y) :- teaches(X, Y).");
  const Relation* teaches = db_.Find(vocab_.FindPredicate("teaches"));
  ASSERT_NE(teaches, nullptr);
  EXPECT_EQ(pairs.size(), static_cast<std::size_t>(teaches->size()));
}

TEST_F(UniversityTest, PhdStudentsAreAdvised) {
  // phd(X) -> advises(Y, X): every phd student is certainly advised, even
  // the ones with no advises tuple in the data.
  std::vector<Tuple> advised = Answer("q(X) :- advises(Y, X), phd(X).");
  EXPECT_EQ(advised.size(), 6u);
}

TEST_F(UniversityTest, JoinThroughDerivedConcept) {
  // Students enrolled in a course taught by some faculty member.
  std::vector<Tuple> studious =
      Answer("q(X) :- enrolled(X, C), teaches(T, C), faculty(T).");
  // Sanity: a subset of all enrolled students, nonempty for this seed.
  EXPECT_FALSE(studious.empty());
  std::vector<Tuple> enrolled = Answer("q(X) :- enrolled(X, C).");
  EXPECT_LE(studious.size(), enrolled.size());
}

TEST_F(UniversityTest, AgreesWithChaseOnAllProbes) {
  for (const char* probe :
       {"q(X) :- person(X).", "q(X) :- faculty(X).", "q(X) :- student(X).",
        "q(X) :- course(X).", "q(X) :- advises(Y, X), phd(X).",
        "q(S, C) :- enrolled(S, C), teaches(T, C)."}) {
    ConjunctiveQuery query = MustQuery(probe, &vocab_);
    StatusOr<RewriteResult> rewriting = RewriteCq(query, ontology_);
    ASSERT_TRUE(rewriting.ok()) << probe;
    EvalOptions drop;
    drop.drop_tuples_with_nulls = true;
    StatusOr<std::vector<Tuple>> cert =
        CertainAnswersViaChase(UnionOfCqs(query), ontology_, db_);
    ASSERT_TRUE(cert.ok()) << probe << ": " << cert.status();
    EXPECT_EQ(Evaluate(rewriting->ucq, db_, drop), *cert) << probe;
  }
}

}  // namespace
}  // namespace ontorew

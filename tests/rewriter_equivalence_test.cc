// Property test: the optimized saturation core (rule index, hashed dedup,
// eager subsumption pruning, optional worker pool) answers exactly like
// the naive explore-everything single-threaded saturation.
//
// For each seeded random single-head program + random CQ, the minimized,
// canonically sorted rewriting of the naive configuration
// (eager_subsumption = false, threads = 1) must equal — CQ for CQ — the
// rewritings of the optimized configuration at threads = 1 and at
// threads = 4. Seeds whose naive saturation hits the divergence cap are
// skipped (the optimized core may legitimately terminate where the naive
// one diverges, since pruning shrinks the explored set); the reverse — the
// naive core succeeding where an optimized one fails — is a bug and
// fails the test. Runs under the regular and the sanitizer CI jobs.

#include <cstddef>
#include <string>
#include <vector>

#include "base/fault_point.h"
#include "base/rng.h"
#include "gtest/gtest.h"
#include "logic/canonical.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "rewriting/rewriter.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/university.h"

namespace ontorew {
namespace {

std::string DescribeUcq(const UnionOfCqs& ucq) {
  std::string out;
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    out += "  " + CanonicalCqKey(cq) + "\n";
  }
  return out;
}

TEST(RewriterEquivalenceTest, OptimizedAndParallelMatchNaive) {
  constexpr int kSeeds = 160;
  constexpr int kRequiredComparisons = 100;
  int compared = 0;
  int skipped_divergent = 0;

  for (int seed = 0; seed < kSeeds; ++seed) {
    Rng rng(0x5eed0000u + static_cast<std::uint64_t>(seed));
    Vocabulary vocab;
    RandomProgramOptions program_options;
    program_options.num_rules = rng.UniformIn(3, 8);
    program_options.num_predicates = rng.UniformIn(3, 6);
    program_options.max_arity = rng.UniformIn(2, 3);
    program_options.max_body_atoms = rng.UniformIn(1, 3);
    program_options.max_head_atoms = 1;  // The rewriter is single-head.
    program_options.existential_prob = 0.3;
    program_options.repeat_prob = 0.1;
    program_options.constant_prob = 0.1;
    TgdProgram program = RandomProgram(program_options, &rng, &vocab);
    ConjunctiveQuery query =
        RandomCq(program, /*num_atoms=*/rng.UniformIn(1, 3),
                 /*num_answer_vars=*/rng.UniformIn(0, 2), &rng, &vocab);

    RewriterOptions naive_options;
    naive_options.max_cqs = 400;
    naive_options.eager_subsumption = false;
    naive_options.threads = 1;
    StatusOr<RewriteResult> naive = RewriteCq(query, program, naive_options);
    if (!naive.ok()) {
      // Divergent (or otherwise capped) seed: nothing to compare against.
      ++skipped_divergent;
      continue;
    }
    ++compared;

    for (int threads : {1, 4}) {
      RewriterOptions optimized_options;
      optimized_options.max_cqs = 400;
      optimized_options.threads = threads;
      StatusOr<RewriteResult> optimized =
          RewriteCq(query, program, optimized_options);
      // The optimized core explores a subset of the naive core's CQs, so
      // it must succeed wherever the naive core does.
      ASSERT_TRUE(optimized.ok())
          << "seed " << seed << " threads " << threads << ": "
          << optimized.status() << "\nquery: " << ToString(query, vocab);
      ASSERT_EQ(optimized->ucq.size(), naive->ucq.size())
          << "seed " << seed << " threads " << threads
          << "\nquery: " << ToString(query, vocab)
          << "\nnaive:\n" << DescribeUcq(naive->ucq)
          << "optimized:\n" << DescribeUcq(optimized->ucq);
      for (std::size_t i = 0; i < naive->ucq.disjuncts().size(); ++i) {
        EXPECT_EQ(optimized->ucq.disjuncts()[i], naive->ucq.disjuncts()[i])
            << "seed " << seed << " threads " << threads << " disjunct "
            << i << "\nnaive:     "
            << CanonicalCqKey(naive->ucq.disjuncts()[i]) << "\noptimized: "
            << CanonicalCqKey(optimized->ucq.disjuncts()[i]);
      }
    }
  }
  // The generator parameters are tuned so most seeds terminate; make sure
  // drift in the generators cannot silently hollow the property out.
  EXPECT_GE(compared, kRequiredComparisons)
      << "only " << compared << " of " << kSeeds
      << " seeds terminated (skipped " << skipped_divergent << ")";
}

// The striped-dedup/work-stealing saturation core must produce the same
// canonical union no matter how the worklist is scheduled. Sweep random
// programs across thread counts 1/2/8 crossed with eager subsumption
// on/off, against a naive single-threaded reference (eager off — the
// configuration with the largest explored set, so every other
// configuration must terminate wherever it does).
TEST(RewriterEquivalenceTest, ThreadSweepProducesIdenticalUnions) {
  constexpr int kSeeds = 80;
  constexpr int kRequiredComparisons = 50;
  int compared = 0;

  for (int seed = 0; seed < kSeeds; ++seed) {
    Rng rng(0x7a11e100u + static_cast<std::uint64_t>(seed));
    Vocabulary vocab;
    RandomProgramOptions program_options;
    program_options.num_rules = rng.UniformIn(3, 8);
    program_options.num_predicates = rng.UniformIn(3, 6);
    program_options.max_arity = rng.UniformIn(2, 3);
    program_options.max_body_atoms = rng.UniformIn(1, 3);
    program_options.max_head_atoms = 1;  // The rewriter is single-head.
    program_options.existential_prob = 0.3;
    program_options.repeat_prob = 0.1;
    program_options.constant_prob = 0.1;
    TgdProgram program = RandomProgram(program_options, &rng, &vocab);
    ConjunctiveQuery query =
        RandomCq(program, /*num_atoms=*/rng.UniformIn(1, 3),
                 /*num_answer_vars=*/rng.UniformIn(0, 2), &rng, &vocab);

    RewriterOptions reference_options;
    reference_options.max_cqs = 400;
    reference_options.eager_subsumption = false;
    reference_options.threads = 1;
    StatusOr<RewriteResult> reference =
        RewriteCq(query, program, reference_options);
    if (!reference.ok()) continue;  // Divergent seed: nothing to compare.
    ++compared;

    for (int threads : {1, 2, 8}) {
      for (bool eager : {true, false}) {
        RewriterOptions options;
        options.max_cqs = 400;
        options.threads = threads;
        options.eager_subsumption = eager;
        StatusOr<RewriteResult> result = RewriteCq(query, program, options);
        ASSERT_TRUE(result.ok())
            << "seed " << seed << " threads " << threads << " eager "
            << eager << ": " << result.status()
            << "\nquery: " << ToString(query, vocab);
        ASSERT_EQ(result->ucq.size(), reference->ucq.size())
            << "seed " << seed << " threads " << threads << " eager "
            << eager << "\nquery: " << ToString(query, vocab)
            << "\nreference:\n" << DescribeUcq(reference->ucq)
            << "got:\n" << DescribeUcq(result->ucq);
        for (std::size_t i = 0; i < reference->ucq.disjuncts().size();
             ++i) {
          EXPECT_EQ(result->ucq.disjuncts()[i],
                    reference->ucq.disjuncts()[i])
              << "seed " << seed << " threads " << threads << " eager "
              << eager << " disjunct " << i;
        }
      }
    }
  }
  EXPECT_GE(compared, kRequiredComparisons)
      << "only " << compared << " of " << kSeeds << " seeds terminated";
}

// All-or-nothing under failure: a rewrite.step fault armed to trip in
// the middle of the saturation must surface as the injected error at
// every thread count — never a partial or corrupted union — and a rerun
// with the fault cleared must still produce the pristine reference
// result (no state leaks across the failed pool).
TEST(RewriterEquivalenceTest, MidSaturationFaultIsAllOrNothing) {
  Vocabulary vocab;
  TgdProgram ontology = UniversityOntology(&vocab);
  StatusOr<ConjunctiveQuery> query = ParseQuery(
      "q(X0) :- person(X0), knows(X0, X1), person(X1).", &vocab);
  ASSERT_TRUE(query.ok()) << query.status();

  RewriterOptions clean_options;
  clean_options.max_cqs = 300000;
  StatusOr<RewriteResult> reference = RewriteCq(*query, ontology,
                                                clean_options);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_GT(reference->generated, 60);  // Room for a mid-saturation trip.

  for (int threads : {1, 2, 8}) {
    RewriterOptions options = clean_options;
    options.threads = threads;
    {
      FaultPointConfig config;
      config.after = 50;  // Trips with many iterations still to come.
      ScopedFault fault("rewrite.step", config);
      StatusOr<RewriteResult> faulted = RewriteCq(*query, ontology,
                                                  options);
      ASSERT_FALSE(faulted.ok()) << "threads " << threads;
      EXPECT_EQ(faulted.status().code(), StatusCode::kInternal)
          << "threads " << threads << ": " << faulted.status();
      EXPECT_NE(faulted.status().message().find("rewrite.step"),
                std::string::npos)
          << faulted.status();
    }
    StatusOr<RewriteResult> rerun = RewriteCq(*query, ontology, options);
    ASSERT_TRUE(rerun.ok()) << "threads " << threads << ": "
                            << rerun.status();
    ASSERT_EQ(rerun->ucq.size(), reference->ucq.size())
        << "threads " << threads;
    for (std::size_t i = 0; i < reference->ucq.disjuncts().size(); ++i) {
      EXPECT_EQ(rerun->ucq.disjuncts()[i], reference->ucq.disjuncts()[i])
          << "threads " << threads << " disjunct " << i;
    }
  }
}

}  // namespace
}  // namespace ontorew

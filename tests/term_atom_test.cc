#include <vector>

#include "gtest/gtest.h"
#include "logic/atom.h"
#include "logic/term.h"
#include "logic/vocabulary.h"
#include "test_util.h"

namespace ontorew {
namespace {

TEST(TermTest, KindsAndIds) {
  Term v = Term::Var(3);
  Term c = Term::Const(3);
  EXPECT_TRUE(v.is_variable());
  EXPECT_FALSE(v.is_constant());
  EXPECT_TRUE(c.is_constant());
  EXPECT_EQ(v.id(), 3);
  EXPECT_EQ(c.id(), 3);
  EXPECT_NE(v, c);  // Same id, different kinds.
}

TEST(TermTest, OrderingVariablesBeforeConstants) {
  EXPECT_LT(Term::Var(100), Term::Const(0));
  EXPECT_LT(Term::Var(1), Term::Var(2));
  EXPECT_LT(Term::Const(1), Term::Const(2));
}

TEST(TermTest, HashDistinguishesKinds) {
  EXPECT_NE(Term::Var(5).Hash(), Term::Const(5).Hash());
  EXPECT_EQ(Term::Var(5).Hash(), Term::Var(5).Hash());
}

TEST(AtomTest, BasicAccessors) {
  Vocabulary vocab;
  Atom atom = MustAtom("r(X, Y, \"a\")", &vocab);
  EXPECT_EQ(atom.arity(), 3);
  EXPECT_EQ(vocab.PredicateName(atom.predicate()), "r");
  EXPECT_TRUE(atom.term(0).is_variable());
  EXPECT_TRUE(atom.term(2).is_constant());
}

TEST(AtomTest, ContainsAndCount) {
  Vocabulary vocab;
  Atom atom = MustAtom("r(X, X, Y)", &vocab);
  Term x = atom.term(0);
  Term y = atom.term(2);
  EXPECT_TRUE(atom.ContainsTerm(x));
  EXPECT_EQ(atom.CountTerm(x), 2);
  EXPECT_EQ(atom.CountTerm(y), 1);
  EXPECT_EQ(atom.CountTerm(Term::Var(12345)), 0);
}

TEST(AtomTest, RepeatedVariableDetection) {
  Vocabulary vocab;
  EXPECT_TRUE(MustAtom("r(X, X)", &vocab).HasRepeatedVariable());
  EXPECT_FALSE(MustAtom("r(X, Y)", &vocab).HasRepeatedVariable());
  // Two occurrences of the same constant are not a repeated variable.
  EXPECT_FALSE(MustAtom("r(a, a)", &vocab).HasRepeatedVariable());
}

TEST(AtomTest, ConstantDetection) {
  Vocabulary vocab;
  EXPECT_TRUE(MustAtom("r(X, a)", &vocab).HasConstant());
  EXPECT_TRUE(MustAtom("num(42)", &vocab).HasConstant());
  EXPECT_FALSE(MustAtom("r(X, Y)", &vocab).HasConstant());
}

TEST(AtomTest, EqualityAndHash) {
  Vocabulary vocab;
  Atom a = MustAtom("r(X, Y)", &vocab);
  Atom b = MustAtom("r(X, Y)", &vocab);
  Atom c = MustAtom("r(Y, X)", &vocab);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);
}

TEST(AtomTest, DistinctVariablesFirstOccurrenceOrder) {
  Vocabulary vocab;
  std::vector<Atom> atoms = {MustAtom("r(B, A)", &vocab),
                             MustAtom("s(A, C, B)", &vocab)};
  std::vector<VariableId> vars = DistinctVariables(atoms);
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(vocab.VariableName(vars[0]), "B");
  EXPECT_EQ(vocab.VariableName(vars[1]), "A");
  EXPECT_EQ(vocab.VariableName(vars[2]), "C");
}

TEST(AtomTest, AppendVariablesSkipsConstants) {
  Vocabulary vocab;
  Atom atom = MustAtom("r(X, a, Y, X)", &vocab);
  std::vector<VariableId> vars;
  atom.AppendVariables(&vars);
  EXPECT_EQ(vars.size(), 3u);  // X, Y, X with duplicates.
}

TEST(VocabularyTest, PredicateArityConflict) {
  Vocabulary vocab;
  ASSERT_TRUE(vocab.InternPredicate("r", 2).ok());
  StatusOr<PredicateId> conflict = vocab.InternPredicate("r", 3);
  EXPECT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.status().code(), StatusCode::kInvalidArgument);
  // Re-registering with the same arity succeeds and returns the same id.
  StatusOr<PredicateId> again = vocab.InternPredicate("r", 2);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, vocab.FindPredicate("r"));
}

TEST(VocabularyTest, FreshVariablesNeverCollide) {
  Vocabulary vocab;
  vocab.InternVariable("_f0");  // Occupy the first fresh name.
  VariableId fresh = vocab.FreshVariable();
  EXPECT_EQ(vocab.VariableName(fresh), "_f1");
}

TEST(VocabularyTest, OutOfRangeVariablePrintsSynthetic) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.VariableName(1 << 20), "_v1048576");
}

}  // namespace
}  // namespace ontorew

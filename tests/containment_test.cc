#include <cstddef>
#include <vector>

#include "base/rng.h"
#include "gtest/gtest.h"
#include "logic/atom.h"
#include "rewriting/containment.h"
#include "test_util.h"
#include "workload/generators.h"

namespace ontorew {
namespace {

TEST(ContainmentTest, IdenticalQueriesSubsumeEachOther) {
  Vocabulary vocab;
  ConjunctiveQuery a = MustQuery("q(X) :- r(X, Y).", &vocab);
  ConjunctiveQuery b = MustQuery("q(U) :- r(U, V).", &vocab);
  EXPECT_TRUE(CqSubsumes(a, b));
  EXPECT_TRUE(CqSubsumes(b, a));
  EXPECT_TRUE(CqEquivalent(a, b));
}

TEST(ContainmentTest, GeneralSubsumesSpecific) {
  Vocabulary vocab;
  ConjunctiveQuery general = MustQuery("q(X) :- r(X, Y).", &vocab);
  ConjunctiveQuery specific = MustQuery("q(X) :- r(X, X).", &vocab);
  EXPECT_TRUE(CqSubsumes(general, specific));
  EXPECT_FALSE(CqSubsumes(specific, general));
}

TEST(ContainmentTest, ConstantsMustMatch) {
  Vocabulary vocab;
  ConjunctiveQuery general = MustQuery("q(X) :- r(X, Y).", &vocab);
  ConjunctiveQuery with_const = MustQuery("q(X) :- r(X, a).", &vocab);
  EXPECT_TRUE(CqSubsumes(general, with_const));
  EXPECT_FALSE(CqSubsumes(with_const, general));
}

TEST(ContainmentTest, AnswerPositionsArePinned) {
  Vocabulary vocab;
  // Swapping the answer variable breaks subsumption even though the bodies
  // are isomorphic.
  ConjunctiveQuery first = MustQuery("q(X) :- r(X, Y).", &vocab);
  ConjunctiveQuery second = MustQuery("q(Y) :- r(X, Y).", &vocab);
  EXPECT_FALSE(CqSubsumes(first, second));
  EXPECT_FALSE(CqSubsumes(second, first));
}

TEST(ContainmentTest, LongerBodyCanStillSubsume) {
  Vocabulary vocab;
  // Both atoms of `general` map onto the single atom of `specific`.
  ConjunctiveQuery general = MustQuery("q(X) :- r(X, Y), r(X, Z).", &vocab);
  ConjunctiveQuery specific = MustQuery("q(X) :- r(X, W).", &vocab);
  EXPECT_TRUE(CqSubsumes(general, specific));
  EXPECT_TRUE(CqSubsumes(specific, general));
}

TEST(ContainmentTest, DifferentArityNeverSubsumes) {
  Vocabulary vocab;
  ConjunctiveQuery one = MustQuery("q(X) :- r(X, Y).", &vocab);
  ConjunctiveQuery two = MustQuery("q(X, Y) :- r(X, Y).", &vocab);
  EXPECT_FALSE(CqSubsumes(one, two));
}

TEST(ContainmentTest, ChainVsTriangle) {
  Vocabulary vocab;
  ConjunctiveQuery chain = MustQuery("q() :- e(X, Y), e(Y, Z).", &vocab);
  ConjunctiveQuery triangle =
      MustQuery("q() :- e(X, Y), e(Y, Z), e(Z, X).", &vocab);
  EXPECT_TRUE(CqSubsumes(chain, triangle));
  EXPECT_FALSE(CqSubsumes(triangle, chain));
}

TEST(MinimizeCqTest, DropsRedundantAtom) {
  Vocabulary vocab;
  // r(X, Z) maps onto r(X, Y): redundant.
  ConjunctiveQuery cq = MustQuery("q(X) :- r(X, Y), r(X, Z).", &vocab);
  ConjunctiveQuery minimized = MinimizeCq(cq);
  EXPECT_EQ(minimized.body().size(), 1u);
  EXPECT_TRUE(CqEquivalent(cq, minimized));
}

TEST(MinimizeCqTest, KeepsNecessaryAtoms) {
  Vocabulary vocab;
  ConjunctiveQuery cq = MustQuery("q(X) :- r(X, Y), s(Y).", &vocab);
  ConjunctiveQuery minimized = MinimizeCq(cq);
  EXPECT_EQ(minimized.body().size(), 2u);
}

TEST(MinimizeCqTest, AnswerVariablesBlockDropping) {
  Vocabulary vocab;
  // r(X, Y) with answer Y cannot be folded into r(X, Z).
  ConjunctiveQuery cq = MustQuery("q(X, Y) :- r(X, Y), r(X, Z).", &vocab);
  ConjunctiveQuery minimized = MinimizeCq(cq);
  // r(X, Z) folds onto r(X, Y) (Z -> Y is fine, Z is existential).
  EXPECT_EQ(minimized.body().size(), 1u);
  EXPECT_TRUE(CqEquivalent(cq, minimized));
}

TEST(MinimizeUcqTest, RemovesSubsumedDisjuncts) {
  Vocabulary vocab;
  UnionOfCqs ucq;
  ucq.Add(MustQuery("q(X) :- r(X, Y).", &vocab));
  ucq.Add(MustQuery("q(X) :- r(X, a).", &vocab));  // Subsumed.
  ucq.Add(MustQuery("q(X) :- s(X).", &vocab));     // Independent.
  UnionOfCqs minimized = MinimizeUcq(ucq);
  EXPECT_EQ(minimized.size(), 2);
}

TEST(MinimizeUcqTest, EquivalentPairKeepsOne) {
  Vocabulary vocab;
  UnionOfCqs ucq;
  ucq.Add(MustQuery("q(X) :- r(X, Y).", &vocab));
  ucq.Add(MustQuery("q(U) :- r(U, V).", &vocab));
  UnionOfCqs minimized = MinimizeUcq(ucq);
  EXPECT_EQ(minimized.size(), 1);
}

// The historical MinimizeCq rescanned from atom 0 after every successful
// drop. The shipping version keeps scanning forward from the drop index
// (retraction homomorphisms compose, so an undroppable atom stays
// undroppable). This reference implementation pins the two to the exact
// same output, not merely an equivalent one.
ConjunctiveQuery MinimizeCqRestartReference(const ConjunctiveQuery& cq) {
  ConjunctiveQuery current = cq;
  bool changed = true;
  while (changed && current.body().size() > 1) {
    changed = false;
    for (std::size_t drop = 0; drop < current.body().size(); ++drop) {
      std::vector<Atom> smaller_body;
      smaller_body.reserve(current.body().size() - 1);
      for (std::size_t i = 0; i < current.body().size(); ++i) {
        if (i != drop) smaller_body.push_back(current.body()[i]);
      }
      ConjunctiveQuery candidate(current.answer_terms(),
                                 std::move(smaller_body));
      if (candidate.Validate().ok() && CqSubsumes(current, candidate)) {
        current = std::move(candidate);
        changed = true;
        break;  // Restart the scan from atom 0.
      }
    }
  }
  return current;
}

TEST(MinimizeCqTest, SinglePassMatchesRestartReference) {
  Vocabulary vocab;
  // Hand-built shapes with redundancy in different positions (front,
  // middle, back, interleaved) so the pass structure actually matters.
  const char* cases[] = {
      "q(X) :- r(X, Y), r(X, Z).",
      "q(X) :- r(X, Y), s(Y), r(X, Z).",
      "q(X) :- r(X, Z), r(X, Y), s(Y).",
      "q() :- e(X, Y), e(Y, Z), e(U, V).",
      "q(X, Y) :- r(X, Y), r(X, Z), r(W, Y).",
      "q(X) :- p(X), r(X, Y), r(Y, Z), r(X, W), p(W).",
  };
  for (const char* text : cases) {
    ConjunctiveQuery cq = MustQuery(text, &vocab);
    EXPECT_EQ(MinimizeCq(cq), MinimizeCqRestartReference(cq)) << text;
  }
  // And randomized CQs over random linear programs. Each round gets a
  // fresh vocabulary: the generators reuse predicate names and would
  // otherwise trip the arity consistency check.
  Rng rng(20260806);
  for (int round = 0; round < 200; ++round) {
    Vocabulary round_vocab;
    TgdProgram program = RandomLinearProgram(
        /*num_rules=*/4, /*num_predicates=*/3, /*max_arity=*/3,
        /*existential_prob=*/0.3, &rng, &round_vocab);
    ConjunctiveQuery cq =
        RandomCq(program, /*num_atoms=*/1 + rng.Uniform(5),
                 /*num_answer_vars=*/rng.Uniform(3), &rng, &round_vocab);
    ConjunctiveQuery fast = MinimizeCq(cq);
    ConjunctiveQuery reference = MinimizeCqRestartReference(cq);
    EXPECT_EQ(fast, reference) << "seed round " << round;
  }
}

TEST(MinimizeUcqTest, MinimizesWithinDisjuncts) {
  Vocabulary vocab;
  UnionOfCqs ucq;
  ucq.Add(MustQuery("q(X) :- r(X, Y), r(X, Z).", &vocab));
  UnionOfCqs minimized = MinimizeUcq(ucq);
  ASSERT_EQ(minimized.size(), 1);
  EXPECT_EQ(minimized.disjuncts()[0].body().size(), 1u);
}

TEST(ResolveRewriteThreadsTest, ClampsByTaskCountAndBounds) {
  // Inline execution whenever a pool could not possibly help.
  EXPECT_EQ(ResolveRewriteThreads(0, 100), 1);
  EXPECT_EQ(ResolveRewriteThreads(1, 100), 1);
  EXPECT_EQ(ResolveRewriteThreads(-3, 100), 1);
  EXPECT_EQ(ResolveRewriteThreads(8, 0), 1);
  EXPECT_EQ(ResolveRewriteThreads(8, 1), 1);
  // Below the min-tasks floor a pool cannot amortize its spawn cost:
  // sub-millisecond saturations stay inline (paper_example1 at threads=4
  // was 3x slower than threads=1 before this floor existed).
  EXPECT_EQ(ResolveRewriteThreads(8, 2), 1);
  EXPECT_EQ(ResolveRewriteThreads(8, 7), 1);
  // At the floor the pool comes back, still bounded by the task count.
  EXPECT_GE(ResolveRewriteThreads(8, 8), 4);  // Oversubscription floor.
  EXPECT_LE(ResolveRewriteThreads(8, 8), 8);
  EXPECT_LE(ResolveRewriteThreads(16, 10), 10);
  // Large requests are bounded regardless of task count (the hard cap is
  // 16, the hardware clamp has an oversubscription floor of 4): never
  // fewer than 2 for a parallel request with work to share, never more
  // than 16.
  const int resolved = ResolveRewriteThreads(64, 1u << 20);
  EXPECT_GE(resolved, 2);
  EXPECT_LE(resolved, 16);
  // Monotonic in the request: asking for fewer threads never yields more.
  EXPECT_LE(ResolveRewriteThreads(2, 1u << 20), resolved);
}

}  // namespace
}  // namespace ontorew

#include "gtest/gtest.h"
#include "rewriting/containment.h"
#include "test_util.h"

namespace ontorew {
namespace {

TEST(ContainmentTest, IdenticalQueriesSubsumeEachOther) {
  Vocabulary vocab;
  ConjunctiveQuery a = MustQuery("q(X) :- r(X, Y).", &vocab);
  ConjunctiveQuery b = MustQuery("q(U) :- r(U, V).", &vocab);
  EXPECT_TRUE(CqSubsumes(a, b));
  EXPECT_TRUE(CqSubsumes(b, a));
  EXPECT_TRUE(CqEquivalent(a, b));
}

TEST(ContainmentTest, GeneralSubsumesSpecific) {
  Vocabulary vocab;
  ConjunctiveQuery general = MustQuery("q(X) :- r(X, Y).", &vocab);
  ConjunctiveQuery specific = MustQuery("q(X) :- r(X, X).", &vocab);
  EXPECT_TRUE(CqSubsumes(general, specific));
  EXPECT_FALSE(CqSubsumes(specific, general));
}

TEST(ContainmentTest, ConstantsMustMatch) {
  Vocabulary vocab;
  ConjunctiveQuery general = MustQuery("q(X) :- r(X, Y).", &vocab);
  ConjunctiveQuery with_const = MustQuery("q(X) :- r(X, a).", &vocab);
  EXPECT_TRUE(CqSubsumes(general, with_const));
  EXPECT_FALSE(CqSubsumes(with_const, general));
}

TEST(ContainmentTest, AnswerPositionsArePinned) {
  Vocabulary vocab;
  // Swapping the answer variable breaks subsumption even though the bodies
  // are isomorphic.
  ConjunctiveQuery first = MustQuery("q(X) :- r(X, Y).", &vocab);
  ConjunctiveQuery second = MustQuery("q(Y) :- r(X, Y).", &vocab);
  EXPECT_FALSE(CqSubsumes(first, second));
  EXPECT_FALSE(CqSubsumes(second, first));
}

TEST(ContainmentTest, LongerBodyCanStillSubsume) {
  Vocabulary vocab;
  // Both atoms of `general` map onto the single atom of `specific`.
  ConjunctiveQuery general = MustQuery("q(X) :- r(X, Y), r(X, Z).", &vocab);
  ConjunctiveQuery specific = MustQuery("q(X) :- r(X, W).", &vocab);
  EXPECT_TRUE(CqSubsumes(general, specific));
  EXPECT_TRUE(CqSubsumes(specific, general));
}

TEST(ContainmentTest, DifferentArityNeverSubsumes) {
  Vocabulary vocab;
  ConjunctiveQuery one = MustQuery("q(X) :- r(X, Y).", &vocab);
  ConjunctiveQuery two = MustQuery("q(X, Y) :- r(X, Y).", &vocab);
  EXPECT_FALSE(CqSubsumes(one, two));
}

TEST(ContainmentTest, ChainVsTriangle) {
  Vocabulary vocab;
  ConjunctiveQuery chain = MustQuery("q() :- e(X, Y), e(Y, Z).", &vocab);
  ConjunctiveQuery triangle =
      MustQuery("q() :- e(X, Y), e(Y, Z), e(Z, X).", &vocab);
  EXPECT_TRUE(CqSubsumes(chain, triangle));
  EXPECT_FALSE(CqSubsumes(triangle, chain));
}

TEST(MinimizeCqTest, DropsRedundantAtom) {
  Vocabulary vocab;
  // r(X, Z) maps onto r(X, Y): redundant.
  ConjunctiveQuery cq = MustQuery("q(X) :- r(X, Y), r(X, Z).", &vocab);
  ConjunctiveQuery minimized = MinimizeCq(cq);
  EXPECT_EQ(minimized.body().size(), 1u);
  EXPECT_TRUE(CqEquivalent(cq, minimized));
}

TEST(MinimizeCqTest, KeepsNecessaryAtoms) {
  Vocabulary vocab;
  ConjunctiveQuery cq = MustQuery("q(X) :- r(X, Y), s(Y).", &vocab);
  ConjunctiveQuery minimized = MinimizeCq(cq);
  EXPECT_EQ(minimized.body().size(), 2u);
}

TEST(MinimizeCqTest, AnswerVariablesBlockDropping) {
  Vocabulary vocab;
  // r(X, Y) with answer Y cannot be folded into r(X, Z).
  ConjunctiveQuery cq = MustQuery("q(X, Y) :- r(X, Y), r(X, Z).", &vocab);
  ConjunctiveQuery minimized = MinimizeCq(cq);
  // r(X, Z) folds onto r(X, Y) (Z -> Y is fine, Z is existential).
  EXPECT_EQ(minimized.body().size(), 1u);
  EXPECT_TRUE(CqEquivalent(cq, minimized));
}

TEST(MinimizeUcqTest, RemovesSubsumedDisjuncts) {
  Vocabulary vocab;
  UnionOfCqs ucq;
  ucq.Add(MustQuery("q(X) :- r(X, Y).", &vocab));
  ucq.Add(MustQuery("q(X) :- r(X, a).", &vocab));  // Subsumed.
  ucq.Add(MustQuery("q(X) :- s(X).", &vocab));     // Independent.
  UnionOfCqs minimized = MinimizeUcq(ucq);
  EXPECT_EQ(minimized.size(), 2);
}

TEST(MinimizeUcqTest, EquivalentPairKeepsOne) {
  Vocabulary vocab;
  UnionOfCqs ucq;
  ucq.Add(MustQuery("q(X) :- r(X, Y).", &vocab));
  ucq.Add(MustQuery("q(U) :- r(U, V).", &vocab));
  UnionOfCqs minimized = MinimizeUcq(ucq);
  EXPECT_EQ(minimized.size(), 1);
}

TEST(MinimizeUcqTest, MinimizesWithinDisjuncts) {
  Vocabulary vocab;
  UnionOfCqs ucq;
  ucq.Add(MustQuery("q(X) :- r(X, Y), r(X, Z).", &vocab));
  UnionOfCqs minimized = MinimizeUcq(ucq);
  ASSERT_EQ(minimized.size(), 1);
  EXPECT_EQ(minimized.disjuncts()[0].body().size(), 1u);
}

}  // namespace
}  // namespace ontorew

#include <optional>
#include <string>
#include <vector>

#include "core/pnode.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ontorew {
namespace {

TEST(PNodeTest, CanonicalizeSingleAtom) {
  Vocabulary vocab;
  Atom atom = MustAtom("r(B, A, B)", &vocab);
  PNode node = CanonicalizePNode({atom}, 0, std::nullopt);
  EXPECT_FALSE(node.has_trace);
  EXPECT_TRUE(node.others.empty());
  // B -> x1, A -> x2, B -> x1 again.
  EXPECT_EQ(node.sigma.term(0), Term::Var(1));
  EXPECT_EQ(node.sigma.term(1), Term::Var(2));
  EXPECT_EQ(node.sigma.term(2), Term::Var(1));
  EXPECT_EQ(PAtomToString(node.sigma, vocab), "r(x1,x2,x1)");
}

TEST(PNodeTest, TraceBecomesZ) {
  Vocabulary vocab;
  Atom atom = MustAtom("r(B, A, B)", &vocab);
  Term b = atom.term(0);
  PNode node = CanonicalizePNode({atom}, 0, b);
  EXPECT_TRUE(node.has_trace);
  EXPECT_EQ(node.sigma.term(0), Term::Var(kTraceVariable));
  EXPECT_EQ(node.sigma.term(2), Term::Var(kTraceVariable));
  EXPECT_EQ(PAtomToString(node.sigma, vocab), "r(z,x1,z)");
}

TEST(PNodeTest, ConstantsPreserved) {
  Vocabulary vocab;
  Atom atom = MustAtom("r(X, alice)", &vocab);
  PNode node = CanonicalizePNode({atom}, 0, std::nullopt);
  EXPECT_TRUE(node.sigma.term(1).is_constant());
  EXPECT_EQ(PAtomToString(node.sigma, vocab), "r(x1,alice)");
}

TEST(PNodeTest, KeyInvariantUnderVariableRenaming) {
  Vocabulary vocab;
  Atom a1 = MustAtom("r(X, Y)", &vocab);
  Atom a2 = MustAtom("s(Y, W)", &vocab);
  Atom b1 = MustAtom("r(U, V)", &vocab);
  Atom b2 = MustAtom("s(V, T)", &vocab);
  PNode na = CanonicalizePNode({a1, a2}, 0, std::nullopt);
  PNode nb = CanonicalizePNode({b1, b2}, 0, std::nullopt);
  EXPECT_EQ(na.Key(), nb.Key());
  EXPECT_EQ(na, nb);
}

TEST(PNodeTest, KeyInvariantUnderContextPermutation) {
  Vocabulary vocab;
  Atom sigma = MustAtom("r(X, Y)", &vocab);
  Atom c1 = MustAtom("s(Y, W)", &vocab);
  Atom c2 = MustAtom("t(W, V)", &vocab);
  PNode order_a = CanonicalizePNode({sigma, c1, c2}, 0, std::nullopt);
  PNode order_b = CanonicalizePNode({c2, sigma, c1}, 1, std::nullopt);
  EXPECT_EQ(order_a.Key(), order_b.Key());
}

TEST(PNodeTest, TraceChangesKey) {
  Vocabulary vocab;
  Atom atom = MustAtom("r(X, Y)", &vocab);
  PNode with = CanonicalizePNode({atom}, 0, atom.term(0));
  PNode without = CanonicalizePNode({atom}, 0, std::nullopt);
  EXPECT_NE(with.Key(), without.Key());
}

TEST(PNodeTest, TracePositionMatters) {
  Vocabulary vocab;
  Atom atom = MustAtom("r(X, Y)", &vocab);
  PNode trace_first = CanonicalizePNode({atom}, 0, atom.term(0));
  PNode trace_second = CanonicalizePNode({atom}, 0, atom.term(1));
  EXPECT_NE(trace_first.Key(), trace_second.Key());
}

TEST(PNodeTest, SigmaIndexSelectsAtom) {
  Vocabulary vocab;
  Atom a = MustAtom("r(X, Y)", &vocab);
  Atom b = MustAtom("s(Y)", &vocab);
  PNode node_r = CanonicalizePNode({a, b}, 0, std::nullopt);
  PNode node_s = CanonicalizePNode({a, b}, 1, std::nullopt);
  EXPECT_EQ(vocab.PredicateName(node_r.sigma.predicate()), "r");
  EXPECT_EQ(vocab.PredicateName(node_s.sigma.predicate()), "s");
  EXPECT_NE(node_r.Key(), node_s.Key());
}

TEST(PNodeTest, ToStringShowsContext) {
  Vocabulary vocab;
  Atom a = MustAtom("r(X, Y)", &vocab);
  Atom b = MustAtom("s(Y)", &vocab);
  PNode node = CanonicalizePNode({a, b}, 0, std::nullopt);
  std::string rendered = ToString(node, vocab);
  EXPECT_NE(rendered.find("r(x1,x2)"), std::string::npos);
  EXPECT_NE(rendered.find("s(x2)"), std::string::npos);
}

TEST(PNodeDeathTest, TraceMustOccurInSigma) {
  Vocabulary vocab;
  Atom a = MustAtom("r(X)", &vocab);
  Atom b = MustAtom("s(Y)", &vocab);
  EXPECT_DEATH(CanonicalizePNode({a, b}, 0, b.term(0)),
               "trace variable must occur in sigma");
}

}  // namespace
}  // namespace ontorew

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "backend/sqlite_backend.h"
#include "base/deadline.h"
#include "base/rng.h"
#include "base/strings.h"
#include "chase/chase.h"
#include "db/eval.h"
#include "db/facts_io.h"
#include "gtest/gtest.h"
#include "logic/canonical.h"
#include "logic/printer.h"
#include "rewriting/containment.h"
#include "rewriting/dag_rewriter.h"
#include "rewriting/datalog.h"
#include "rewriting/rewriter.h"
#include "test_util.h"
#include "workload/corpus.h"
#include "workload/generators.h"
#include "workload/paper_examples.h"
#include "workload/university.h"

// The differential harness — a standing correctness oracle. For each
// generated (program, query, database) it computes certain answers five
// ways and fails on any disagreement:
//
//   rewrite -> InMemoryBackend      (the evaluator the repo grew up on)
//   rewrite -> SqliteBackend        (the paper's "plain SQL" delegation,
//                                    flat UNION SQL)
//   rewrite -> factor -> SqliteBackend
//                                   (the same union compiled to
//                                    nonrecursive Datalog and executed
//                                    as WITH-CTE SQL)
//   DAG rewrite -> SqliteBackend    (RewriteToDatalog: the factored
//                                    program emitted straight from the
//                                    per-group saturation, its unfolding
//                                    checked CQ-for-CQ against the flat
//                                    union, then executed as CTE SQL)
//   chase + evaluate                (the semantics oracle, when it
//                                    terminates within budget)
//
// The factoring and DAG legs are never skipped: once the flat rewrite
// succeeded within budget, both are deterministic and no more expensive
// than the saturation that already ran, so any failure or mismatch there
// is a bug, not a budget miss. The DAG leg is what keeps the gate logic
// (group decomposition, G2/G3 fallbacks) honest on inputs with repeated
// head variables and constants — RandomProgram generates both.
//
// Seeds whose rewriting or chase runs out of budget are skipped and
// counted; the test asserts that enough seeds produced real comparisons.
// On disagreement the failing triple is minimized (drop TGDs, then
// facts, while the disagreement persists) and printed twice: as the
// classic repro block, and as a self-contained corpus case ([program] /
// [facts] / [query] / [expected]-from-the-chase) ready to check in under
// tests/corpus/, where corpus_test.cc replays it on every leg forever.
//
// Knobs (for the CI sweep): ONTOREW_DIFF_RUNS (default 200),
// ONTOREW_DIFF_BASE_SEED (default 1, making the default run a fixed seed
// set), and ONTOREW_CORPUS_EMIT (a directory; when set, each minimized
// failure is also written there as seed<seed>.repro).

namespace ontorew {
namespace {

struct DiffBudget {
  RewriterOptions rewriter;
  ChaseOptions chase;
  DiffBudget() {
    rewriter.max_cqs = 3000;
    rewriter.cancel = CancelScope(Deadline::AfterMillis(2000));
    chase.max_rounds = 60;
    chase.max_tuples = 50000;
    chase.cancel = CancelScope(Deadline::AfterMillis(2000));
  }
};

// Is `status` "ran out of budget" (skip the seed) as opposed to a bug?
bool IsBudgetFailure(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted ||
         status.code() == StatusCode::kDeadlineExceeded;
}

struct DiffOutcome {
  bool rewrite_ok = false;
  bool chase_ok = false;
  bool agree = true;
  std::string detail;  // Which pair disagreed, with sizes.
};

// Runs the pipelines on one triple. Hard errors (anything that is
// not a budget failure) are reported as disagreements: no pipeline may
// fail on inputs the others accept.
DiffOutcome RunTriple(const TgdProgram& program, const Database& db,
                      const ConjunctiveQuery& query, Vocabulary* vocab) {
  DiffOutcome outcome;
  DiffBudget budget;
  const UnionOfCqs ucq(query);

  StatusOr<RewriteResult> rewriting = RewriteCq(query, program,
                                                budget.rewriter);
  if (!rewriting.ok()) {
    if (!IsBudgetFailure(rewriting.status())) {
      outcome.agree = false;
      outcome.detail = StrCat("rewrite failed: ",
                              rewriting.status().ToString());
    }
    return outcome;
  }
  outcome.rewrite_ok = true;

  InMemoryBackend memory;
  Status load = memory.Load(program, db);
  SqliteBackend sqlite(vocab);
  Status sqlite_load = sqlite.Load(program, db);
  StatusOr<std::vector<Tuple>> from_memory =
      load.ok() ? memory.Execute(rewriting->ucq, {})
                : StatusOr<std::vector<Tuple>>(load);
  StatusOr<std::vector<Tuple>> from_sqlite =
      sqlite_load.ok() ? sqlite.Execute(rewriting->ucq, {})
                       : StatusOr<std::vector<Tuple>>(sqlite_load);
  if (!from_memory.ok() || !from_sqlite.ok()) {
    outcome.agree = false;
    outcome.detail =
        StrCat("backend error: inmemory=",
               from_memory.ok() ? "ok" : from_memory.status().ToString(),
               ", sqlite=",
               from_sqlite.ok() ? "ok" : from_sqlite.status().ToString());
    return outcome;
  }
  if (*from_memory != *from_sqlite) {
    outcome.agree = false;
    outcome.detail = StrCat("rewrite->inmemory (", from_memory->size(),
                            " answers) != rewrite->sqlite (",
                            from_sqlite->size(), " answers)");
    return outcome;
  }

  // Third way: the union factored into nonrecursive Datalog, executed as
  // one WITH-CTE statement. Factoring and execution errors are hard.
  StatusOr<DatalogProgram> factored = FactorUcq(rewriting->ucq);
  if (!factored.ok()) {
    outcome.agree = false;
    outcome.detail = StrCat("factoring failed: ",
                            factored.status().ToString());
    return outcome;
  }
  StatusOr<std::vector<Tuple>> from_cte =
      sqlite.ExecuteDatalog(*factored, {});
  if (!from_cte.ok()) {
    outcome.agree = false;
    outcome.detail = StrCat("cte execution failed: ",
                            from_cte.status().ToString());
    return outcome;
  }
  if (*from_memory != *from_cte) {
    outcome.agree = false;
    outcome.detail = StrCat("rewrite->inmemory (", from_memory->size(),
                            " answers) != factor->sqlite-cte (",
                            from_cte->size(), " answers, ",
                            factored->cte_count(), " CTEs)");
    return outcome;
  }

  // Fourth way: the DAG-native rewriting. Its unfolding must minimize to
  // exactly the flat union (canonical-key multisets — minimal UCQs are
  // unique up to disjunct isomorphism), and its execution must agree.
  // Fresh deadline: the flat saturation above may have consumed most of
  // the shared one, and this leg is all hard errors.
  DagRewriteOptions dag_options;
  dag_options.rewriter = budget.rewriter;
  dag_options.rewriter.cancel = CancelScope(Deadline::AfterMillis(2000));
  StatusOr<DagRewriteResult> dag =
      RewriteToDatalog(ucq, program, dag_options);
  if (!dag.ok()) {
    outcome.agree = false;
    outcome.detail = StrCat("dag rewrite failed where flat succeeded: ",
                            dag.status().ToString());
    return outcome;
  }
  StatusOr<UnionOfCqs> unfolded = UnfoldDatalog(dag->program);
  if (!unfolded.ok()) {
    outcome.agree = false;
    outcome.detail = StrCat("dag unfold failed: ",
                            unfolded.status().ToString());
    return outcome;
  }
  const UnionOfCqs dag_minimized = MinimizeUcq(*unfolded);
  std::vector<std::string> dag_keys, flat_keys;
  for (const ConjunctiveQuery& cq : dag_minimized.disjuncts()) {
    dag_keys.push_back(CanonicalCqKey(cq));
  }
  for (const ConjunctiveQuery& cq : rewriting->ucq.disjuncts()) {
    flat_keys.push_back(CanonicalCqKey(cq));
  }
  std::sort(dag_keys.begin(), dag_keys.end());
  std::sort(flat_keys.begin(), flat_keys.end());
  if (dag_keys != flat_keys) {
    outcome.agree = false;
    outcome.detail = StrCat("unfold(dag) != flat union (",
                            dag_keys.size(), " vs ", flat_keys.size(),
                            " minimized disjuncts; fallback=",
                            dag->fallback ? "yes" : "no", ", groups=",
                            dag->groups, ")");
    return outcome;
  }
  StatusOr<std::vector<Tuple>> from_dag =
      sqlite.ExecuteDatalog(dag->program, {});
  if (!from_dag.ok()) {
    outcome.agree = false;
    outcome.detail = StrCat("dag cte execution failed: ",
                            from_dag.status().ToString());
    return outcome;
  }
  if (*from_memory != *from_dag) {
    outcome.agree = false;
    outcome.detail = StrCat("rewrite->inmemory (", from_memory->size(),
                            " answers) != dag->sqlite-cte (",
                            from_dag->size(), " answers, ",
                            dag->program.cte_count(), " CTEs)");
    return outcome;
  }

  StatusOr<std::vector<Tuple>> oracle =
      CertainAnswersViaChase(ucq, program, db, budget.chase);
  if (!oracle.ok()) {
    if (!IsBudgetFailure(oracle.status())) {
      outcome.agree = false;
      outcome.detail = StrCat("chase failed: ", oracle.status().ToString());
    }
    return outcome;
  }
  outcome.chase_ok = true;
  if (*from_memory != *oracle) {
    outcome.agree = false;
    outcome.detail = StrCat("rewrite (", from_memory->size(),
                            " answers) != chase oracle (", oracle->size(),
                            " answers)");
  }
  return outcome;
}

// Delta-debugging-lite: drop TGDs, then facts, while the triple still
// disagrees, so the printed repro is as small as the greedy pass gets.
void Minimize(TgdProgram* program, Database* db,
              const ConjunctiveQuery& query, Vocabulary* vocab) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (int i = 0; i < program->size(); ++i) {
      TgdProgram candidate;
      for (int j = 0; j < program->size(); ++j) {
        if (j != i) candidate.Add(program->tgds()[static_cast<std::size_t>(j)]);
      }
      if (candidate.size() == 0) continue;
      if (!RunTriple(candidate, *db, query, vocab).agree) {
        *program = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (PredicateId p : db->PredicatesPresent()) {
      const Relation* relation = db->Find(p);
      for (int t = 0; t < relation->size(); ++t) {
        Database candidate;
        for (PredicateId p2 : db->PredicatesPresent()) {
          const Relation* r2 = db->Find(p2);
          for (int t2 = 0; t2 < r2->size(); ++t2) {
            if (p2 == p && t2 == t) continue;
            candidate.Insert(p2, r2->tuples()[static_cast<std::size_t>(t2)]);
          }
        }
        if (!RunTriple(*program, candidate, query, vocab).agree) {
          *db = std::move(candidate);
          shrunk = true;
          break;
        }
      }
      if (shrunk) break;
    }
  }
}

std::string Repro(const TgdProgram& program, const Database& db,
                  const ConjunctiveQuery& query, const Vocabulary& vocab,
                  std::uint64_t seed) {
  return StrCat("=== repro (seed ", seed, ") ===\n# program\n",
                ToString(program, vocab), "# facts\n",
                FactsToString(db, vocab), "# query\n",
                ToString(query, vocab), "\n====================");
}

// Renders the minimized failure as a self-contained corpus case —
// tests/corpus/ format, [expected] from the chase oracle under a widened
// budget — and, when ONTOREW_CORPUS_EMIT names a directory, writes it
// there as seed<seed>.repro so the repro can be checked in verbatim.
// Returns the message block to append to the test failure.
std::string EmitCorpusCase(const TgdProgram& program, const Database& db,
                           const ConjunctiveQuery& query,
                           const Vocabulary& vocab, std::uint64_t seed,
                           const std::string& detail) {
  ChaseOptions oracle_budget;
  oracle_budget.max_rounds = 200;
  oracle_budget.max_tuples = 200000;
  oracle_budget.cancel = CancelScope(Deadline::AfterMillis(10000));
  StatusOr<std::vector<Tuple>> expected = CertainAnswersViaChase(
      UnionOfCqs(query), program, db, oracle_budget);
  if (!expected.ok()) {
    return StrCat("\n(no corpus case emitted: chase oracle failed under "
                  "the widened budget: ",
                  expected.status().ToString(), ")");
  }
  const std::string text = CorpusCaseToString(
      program, db, query, *expected, vocab,
      {StrCat("Minimized from differential seed ", seed, ": ", detail),
       "Check this file in under tests/corpus/ to pin the fix."});
  std::string message =
      StrCat("\n--- corpus case (tests/corpus format) ---\n", text,
             "-----------------------------------------");
  if (const char* dir = std::getenv("ONTOREW_CORPUS_EMIT")) {
    const std::string path = StrCat(dir, "/seed", seed, ".repro");
    std::ofstream out(path);
    out << text;
    message += out.good() ? StrCat("\n(written to ", path, ")")
                          : StrCat("\n(failed to write ", path, ")");
  }
  return message;
}

// One randomized seed: generate, compare, and on disagreement minimize
// and fail with the repro.
void RunSeed(std::uint64_t seed, int* compared_backends,
             int* compared_chase) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + seed);
  Vocabulary vocab;
  TgdProgram program;
  if (seed % 2 == 0) {
    program = RandomLinearProgram(rng.UniformIn(3, 6), rng.UniformIn(3, 5),
                                  rng.UniformIn(1, 3), 0.4, &rng, &vocab);
  } else {
    // The widened family: higher arity plus explicit weight on the two
    // head shapes whose applicability conditions the saturator used to
    // get wrong — all-constant heads and repeated-existential heads.
    // Position-wise sampling alone produced a repeated existential head
    // roughly once per thousand rules, which is how the seed-7275
    // completeness bug survived several hundred-seed sweeps.
    RandomProgramOptions options;
    options.num_rules = rng.UniformIn(3, 7);
    options.num_predicates = rng.UniformIn(3, 5);
    options.max_arity = 4;
    options.max_body_atoms = 2;
    options.max_head_atoms = 1;
    options.existential_prob = 0.3;
    options.repeat_prob = 0.2;
    options.constant_prob = 0.15;
    options.num_constants = 3;
    options.repeated_existential_head_prob = 0.15;
    options.constant_head_prob = 0.1;
    program = RandomProgram(options, &rng, &vocab);
  }
  Database db = RandomDatabase(program, rng.UniformIn(2, 6),
                               rng.UniformIn(3, 5), &rng, &vocab);
  ConjunctiveQuery query = RandomCq(program, rng.UniformIn(1, 3),
                                    rng.UniformIn(0, 2), &rng, &vocab);

  DiffOutcome outcome = RunTriple(program, db, query, &vocab);
  if (outcome.agree) {
    if (outcome.rewrite_ok) ++*compared_backends;
    if (outcome.chase_ok) ++*compared_chase;
    return;
  }
  Minimize(&program, &db, query, &vocab);
  DiffOutcome minimized = RunTriple(program, db, query, &vocab);
  const std::string& detail =
      minimized.agree ? outcome.detail : minimized.detail;
  ADD_FAILURE() << "differential disagreement: " << detail << "\n"
                << Repro(program, db, query, vocab, seed)
                << EmitCorpusCase(program, db, query, vocab, seed, detail);
}

// Seeds that once exposed a real bug, promoted into a fixed set that
// runs on every CI configuration regardless of ONTOREW_DIFF_* settings.
// The historical minimized triple is additionally pinned — generator
// drift-proof — as a file under tests/corpus/ (see corpus_test.cc);
// keeping the seed here too means the *current* generators re-explore
// the neighbourhood that found it.
//   7275: flat saturation dropped a certain answer that needs a
//         factorization step before resolving against a constant-head
//         rule with a repeated existential head variable.
constexpr std::uint64_t kRegressionSeeds[] = {7275};

TEST(DifferentialTest, RegressionSeedsAgree) {
  int compared_backends = 0;
  int compared_chase = 0;
  for (std::uint64_t seed : kRegressionSeeds) {
    RunSeed(seed, &compared_backends, &compared_chase);
  }
  RecordProperty("compared_backends", compared_backends);
  RecordProperty("compared_chase", compared_chase);
}

TEST(DifferentialTest, RandomizedTriplesAgree) {
  int runs = 200;
  std::uint64_t base_seed = 1;
  if (const char* env = std::getenv("ONTOREW_DIFF_RUNS")) {
    runs = std::atoi(env);
    ASSERT_GT(runs, 0) << "ONTOREW_DIFF_RUNS must be positive";
  }
  if (const char* env = std::getenv("ONTOREW_DIFF_BASE_SEED")) {
    base_seed = static_cast<std::uint64_t>(std::atoll(env));
  }

  int compared_backends = 0;
  int compared_chase = 0;
  for (int i = 0; i < runs; ++i) {
    RunSeed(base_seed + static_cast<std::uint64_t>(i), &compared_backends,
            &compared_chase);
    if (::testing::Test::HasFailure()) break;  // First repro is enough.
  }
  RecordProperty("compared_backends", compared_backends);
  RecordProperty("compared_chase", compared_chase);
  // The harness is only an oracle if most seeds actually compare: guard
  // against generator drift silently turning this into a no-op.
  EXPECT_GE(compared_backends, runs / 2)
      << "too few seeds produced a backend comparison";
  EXPECT_GE(compared_chase, runs / 4)
      << "too few seeds produced a chase-oracle comparison";
}

// The deterministic acceptance workloads: every paper example program
// with single-atom queries over each predicate, and the university
// ontology with its canonical query mix.
TEST(DifferentialTest, PaperExamplesAgree) {
  using Factory = TgdProgram (*)(Vocabulary*);
  const Factory factories[] = {&PaperExample1, &PaperExample2,
                               &PaperExample3};
  int compared = 0;
  for (std::size_t f = 0; f < 3; ++f) {
    Rng rng(1000 + static_cast<std::uint64_t>(f));
    Vocabulary vocab;
    TgdProgram program = factories[f](&vocab);
    Database db = RandomDatabase(program, 4, 4, &rng, &vocab);
    for (PredicateId p = 0; p < vocab.num_predicates(); ++p) {
      // q(X1..Xk) :- p(X1..Xk), plus its boolean version.
      std::vector<Term> terms;
      for (int j = 0; j < vocab.PredicateArity(p); ++j) {
        terms.push_back(Term::Var(vocab.InternVariable(StrCat("X", j))));
      }
      const Atom atom(p, terms);
      const ConjunctiveQuery queries[] = {
          ConjunctiveQuery(terms, {atom}),
          ConjunctiveQuery(std::vector<Term>{}, {atom})};
      for (const ConjunctiveQuery& query : queries) {
        DiffOutcome outcome = RunTriple(program, db, query, &vocab);
        EXPECT_TRUE(outcome.agree)
            << outcome.detail << "\n"
            << Repro(program, db, query, vocab, 1000 + f);
        if (outcome.rewrite_ok) ++compared;
      }
    }
  }
  // PaperExample2 is not FO-rewritable for every shape, but most of
  // these queries must still rewrite within budget.
  EXPECT_GE(compared, 12);
}

TEST(DifferentialTest, UniversityWorkloadAgrees) {
  Rng rng(42);
  Vocabulary vocab;
  TgdProgram ontology = UniversityOntology(&vocab);
  UniversityInstanceOptions options;
  options.num_professors = 4;
  options.num_lecturers = 4;
  options.num_students = 25;
  options.num_phd_students = 5;
  options.num_courses = 8;
  Database db = UniversityInstance(options, &rng, &vocab);

  int compared_chase = 0;
  for (const char* text :
       {"q(X) :- person(X).", "q(X) :- faculty(X).", "q(X) :- student(X).",
        "q(X) :- course(X).", "q(X, Y) :- teaches(X, Y).",
        "q(X, Y) :- advises(X, Y).", "q(X) :- teaches(X, Y), course(Y).",
        "q(X) :- enrolled(X, Y), teaches(Z, Y).", "q() :- phd(X)."}) {
    ConjunctiveQuery query = MustQuery(text, &vocab);
    DiffOutcome outcome = RunTriple(ontology, db, query, &vocab);
    EXPECT_TRUE(outcome.agree)
        << text << ": " << outcome.detail << "\n"
        << Repro(ontology, db, query, vocab, 42);
    EXPECT_TRUE(outcome.rewrite_ok) << text;
    if (outcome.chase_ok) ++compared_chase;
  }
  // The university ontology is weakly acyclic: the chase oracle must
  // have confirmed every query, not just the backend pair.
  EXPECT_EQ(compared_chase, 9);
}

}  // namespace
}  // namespace ontorew
